// E1/E2 — Fig. 5(a),(b): effect of the threshold theta on dissemination
// accuracy, for 20/40/60 % relevant-node targets.
//
// For each (relevant %, theta) cell this prints the paper's four series as
// run averages over 20 000 epochs (999 queries):
//   should   — % of nodes that SHOULD receive the query (sources +
//              forwarders, ground truth)
//   receive  — % of nodes that RECEIVE the query under DirQ
//   source   — % of nodes whose reading actually matches
//   wrong    — % of nodes that SHOULD NOT receive it yet did
//
// Paper shape: `receive` - `should` widens as theta grows; the effect is
// strongest at small relevant percentages.
#include "bench_util.hpp"

int main() {
  using namespace dirq;
  bench::print_header("Fig. 5 — effect of theta on accuracy",
                      "ICPPW'06 DirQ paper, Figure 5(a)/(b), Section 7.1");

  for (double fraction : {0.2, 0.4, 0.6}) {
    sweep::ExperimentPlan plan(
        "fig5-relevant-" + metrics::fmt(fraction * 100.0, 0), [fraction] {
          core::ExperimentConfig cfg = sweep::paper_config();
          sweep::relevant(fraction).apply(cfg);
          cfg.keep_records = false;
          return cfg;
        }());
    std::vector<sweep::AxisValue> thetas;
    for (int theta = 1; theta <= 9; ++theta) {
      thetas.push_back(sweep::fixed_theta(static_cast<double>(theta)));
    }
    plan.axis(sweep::theta_axis(std::move(thetas)));

    const std::vector<sweep::CellResult> results =
        sweep::require_ok(sweep::SweepRunner().run(plan));

    std::cout << "Percentage of relevant nodes = "
              << metrics::fmt(fraction * 100.0, 0) << "%\n";
    sweep::ConsoleTableSink console(std::cout);
    sweep::report(
        {"fig5 relevant=" + metrics::fmt(fraction * 100.0, 0) + "%",
         plan.name(),
         {"theta_pct", "should_%", "receive_%", "source_%", "should_not_%",
          "overshoot_%"}},
        results,
        [](const sweep::CellResult& r) {
          const core::ExperimentResults& res = r.results;
          return std::vector<std::string>{
              metrics::fmt(r.cell.config.network.fixed_pct, 0),
              metrics::fmt(res.should_pct.mean()),
              metrics::fmt(res.receive_pct.mean()),
              metrics::fmt(res.source_pct.mean()),
              metrics::fmt(res.wrong_pct.mean()),
              metrics::fmt(res.overshoot_pct.mean())};
        },
        {&console});
    std::cout << '\n';

    sweep::TsvSink tsv(std::cout);
    sweep::report(
        {"fig5 relevant=" + metrics::fmt(fraction * 100.0, 0) + "%",
         plan.name(),
         {"theta_pct", "should_pct", "receive_pct", "source_pct", "wrong_pct",
          "overshoot_pct"}},
        results,
        [](const sweep::CellResult& r) {
          const core::ExperimentResults& res = r.results;
          return std::vector<std::string>{
              metrics::fmt(r.cell.config.network.fixed_pct, 0),
              metrics::fmt(res.should_pct.mean(), 4),
              metrics::fmt(res.receive_pct.mean(), 4),
              metrics::fmt(res.source_pct.mean(), 4),
              metrics::fmt(res.wrong_pct.mean(), 4),
              metrics::fmt(res.overshoot_pct.mean(), 4)};
        },
        {&tsv});
  }
  return 0;
}

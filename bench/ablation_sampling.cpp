// Extension E9 — sampling suppression (paper §8 future work): how much ADC
// energy the Holt-predictor gate saves, and what it costs in accuracy.
//
// Sweeps the prediction margin (as a fraction of theta) on the standard
// 20 000-epoch workload at theta = 5 %, 40 % relevant nodes.
#include "bench_util.hpp"

int main() {
  using namespace dirq;
  bench::print_header("Extension — sampling suppression (paper Section 8)",
                      "the paper's stated future work, implemented");

  core::ExperimentConfig base =
      bench::with_fixed_theta(bench::paper_config(), 5.0, 0.4);
  base.keep_records = false;
  const core::ExperimentResults off = core::Experiment(base).run();

  metrics::Table table({"margin_frac", "samples", "sampling_saved_%",
                        "updates", "coverage_%", "overshoot_%",
                        "radio_ratio_vs_flood"});
  table.add_row({"off", std::to_string(off.samples_taken), "0.00",
                 std::to_string(off.updates_transmitted),
                 metrics::fmt(off.coverage_pct.mean()),
                 metrics::fmt(off.overshoot_pct.mean()),
                 metrics::fmt(off.cost_ratio(), 3)});

  for (double margin : {0.25, 0.5, 1.0, 2.0}) {
    core::ExperimentConfig cfg = base;
    cfg.network.sampling.enabled = true;
    cfg.network.sampling.margin_frac = margin;
    const core::ExperimentResults res = core::Experiment(cfg).run();
    const double saved =
        100.0 * (1.0 - static_cast<double>(res.samples_taken) /
                           static_cast<double>(off.samples_taken));
    table.add_row({metrics::fmt(margin), std::to_string(res.samples_taken),
                   metrics::fmt(saved),
                   std::to_string(res.updates_transmitted),
                   metrics::fmt(res.coverage_pct.mean()),
                   metrics::fmt(res.overshoot_pct.mean()),
                   metrics::fmt(res.cost_ratio(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nThe predictor trades ADC energy against detection fidelity: "
               "small margins keep\ncoverage at the always-sample level while "
               "already skipping most samples on the\nslow-moving sensor "
               "types; aggressive margins save more but delay threshold-\n"
               "crossing detection (coverage/overshoot drift).\n";
  return 0;
}

// Extension E9 — sampling suppression (paper §8 future work): how much ADC
// energy the Holt-predictor gate saves, and what it costs in accuracy.
//
// Sweeps the prediction margin (as a fraction of theta) on the standard
// 20 000-epoch workload at theta = 5 %, 40 % relevant nodes.
#include "bench_util.hpp"

int main() {
  using namespace dirq;
  bench::print_header("Extension — sampling suppression (paper Section 8)",
                      "the paper's stated future work, implemented");

  sweep::ExperimentPlan plan("sampling-margin", [] {
    core::ExperimentConfig cfg = sweep::paper_config();
    sweep::fixed_theta(5.0).apply(cfg);
    sweep::relevant(0.4).apply(cfg);
    cfg.keep_records = false;
    return cfg;
  }());
  std::vector<sweep::AxisValue> margins{
      {"off", [](core::ExperimentConfig&) {}}};
  for (double margin : {0.25, 0.5, 1.0, 2.0}) {
    margins.push_back({metrics::fmt(margin), [margin](core::ExperimentConfig& cfg) {
                         cfg.network.sampling.enabled = true;
                         cfg.network.sampling.margin_frac = margin;
                       }});
  }
  plan.axis(sweep::custom_axis("margin_frac", std::move(margins)));

  const std::vector<sweep::CellResult> results = sweep::require_ok(sweep::SweepRunner().run(plan));
  // The always-sample baseline is the first cell (margin axis value "off").
  const double off_samples =
      static_cast<double>(results.front().results.samples_taken);

  sweep::ConsoleTableSink console(std::cout);
  sweep::report(
      {"sampling suppression", plan.name(),
       {"margin_frac", "samples", "sampling_saved_%", "updates", "coverage_%",
        "overshoot_%", "radio_ratio_vs_flood"}},
      results,
      [off_samples](const sweep::CellResult& r) {
        const core::ExperimentResults& res = r.results;
        const double saved =
            100.0 *
            (1.0 - static_cast<double>(res.samples_taken) / off_samples);
        return std::vector<std::string>{
            *r.cell.coordinate("margin_frac"),
            std::to_string(res.samples_taken), metrics::fmt(saved),
            std::to_string(res.updates_transmitted),
            metrics::fmt(res.coverage_pct.mean()),
            metrics::fmt(res.overshoot_pct.mean()),
            metrics::fmt(res.cost_ratio(), 3)};
      },
      {&console});
  std::cout << "\nThe predictor trades ADC energy against detection fidelity: "
               "small margins keep\ncoverage at the always-sample level while "
               "already skipping most samples on the\nslow-moving sensor "
               "types; aggressive margins save more but delay threshold-\n"
               "crossing detection (coverage/overshoot drift).\n";
  return 0;
}

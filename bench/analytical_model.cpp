// E5 — Section 5 analytical model: CFTotal, CQDmax, CUDmax and fMax over a
// (k, d) grid, the paper's worked example (k=2, d=4 -> fMax ~ 0.76), and a
// cross-check of the closed forms against the simulated flooding baseline.
//
// The (k, d) grid runs as an explicit-cell plan through SweepRunner::map —
// each cell evaluates the closed forms and floods the matching k-ary tree.
#include <vector>

#include "analysis/cost_model.hpp"
#include "bench_util.hpp"
#include "core/flooding.hpp"
#include "net/placement.hpp"
#include "net/spanning_tree.hpp"
#include "sim/rng.hpp"

namespace {

using namespace dirq;

struct ModelCell {
  std::int64_t k = 0, d = 0;
  std::int64_t nodes = 0;
  CostUnits cf_total = 0, cqd_max = 0, cud_max = 0;
  double f_max = 0.0;
  CostUnits sim_flood = 0;
};

}  // namespace

int main() {
  using namespace dirq;
  bench::print_header("Section 5 — analytical cost model",
                      "ICPPW'06 DirQ paper, Eqs. (3)-(8), Section 5");

  std::vector<std::pair<std::int64_t, std::int64_t>> grid;
  for (std::int64_t k : {2, 3, 4, 8}) {
    for (std::int64_t d : {1, 2, 3, 4}) {
      if (analysis::tree_nodes(k, d) > 5000) continue;
      grid.emplace_back(k, d);
    }
  }

  sweep::ExperimentPlan plan("analytical-model", core::ExperimentConfig{});
  for (const auto& kd : grid) {
    plan.cell("k=" + std::to_string(kd.first) + " d=" + std::to_string(kd.second),
              [](core::ExperimentConfig&) {});
  }

  const std::vector<ModelCell> cells = sweep::SweepRunner().map(
      plan, [&grid](const sweep::PlanCell& cell) {
        const auto [k, d] = grid[cell.index];
        ModelCell out;
        out.k = k;
        out.d = d;
        out.nodes = analysis::tree_nodes(k, d);
        out.cf_total = analysis::flooding_cost(k, d);
        out.cqd_max = analysis::cqd_max(k, d);
        out.cud_max = analysis::cud_max(k, d);
        out.f_max = analysis::f_max(k, d);
        net::Topology topo = net::knary_tree(static_cast<std::size_t>(k),
                                             static_cast<std::size_t>(d));
        out.sim_flood = core::FloodingScheme(topo).flood_from(0).cost();
        return out;
      });

  sweep::ConsoleTableSink console(std::cout);
  const sweep::SweepHeader header{
      "analytical cost model (k, d) grid", plan.name(),
      {"k", "d", "nodes", "CFTotal", "CQDmax", "CUDmax", "fMax", "sim_flood"}};
  console.begin(header);
  const std::vector<sweep::PlanCell> plan_cells = plan.cells();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ModelCell& c = cells[i];
    console.row({std::to_string(c.k), std::to_string(c.d),
                 std::to_string(c.nodes), std::to_string(c.cf_total),
                 std::to_string(c.cqd_max), std::to_string(c.cud_max),
                 metrics::fmt(c.f_max, 4), std::to_string(c.sim_flood)},
                &plan_cells[i], nullptr);
  }
  console.end();

  std::cout << "\nPaper worked example (Section 5.3): k=2, d=4 -> fMax = "
            << metrics::fmt(analysis::f_max(2, 4), 4)
            << "  (paper reports ~0.76)\n\n";

  // The runtime bound for the actual evaluation topology (50 random nodes)
  // — a single derived listing, not a grid.
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  net::SpanningTree tree(topo, 0);
  std::int64_t internal = 0;
  for (NodeId u : tree.bfs_order()) {
    if (!tree.children(u).empty()) ++internal;
  }
  const auto n = static_cast<std::int64_t>(topo.alive_count());
  const auto links = static_cast<std::int64_t>(topo.link_count());
  metrics::Table g({"metric", "value"});
  g.add_row({"nodes", std::to_string(n)});
  g.add_row({"links", std::to_string(links)});
  g.add_row({"tree max branching (k)", std::to_string(tree.max_branching())});
  g.add_row({"tree depth (d)", std::to_string(tree.max_depth())});
  g.add_row({"CFTotal (graph)",
             std::to_string(analysis::flooding_cost_graph(n, links))});
  g.add_row({"CQDmax (graph)",
             std::to_string(analysis::cqd_max_graph(n, internal))});
  g.add_row({"CUDmax (graph)", std::to_string(analysis::cud_max_graph(n))});
  g.add_row({"fMax (graph)",
             metrics::fmt(analysis::f_max_graph(n, links, internal), 4)});
  std::cout << "Runtime bound for the paper's 50-node random topology "
               "(seed 42):\n";
  g.print(std::cout);
  return 0;
}

// E5 — Section 5 analytical model: CFTotal, CQDmax, CUDmax and fMax over a
// (k, d) grid, the paper's worked example (k=2, d=4 -> fMax ~ 0.76), and a
// cross-check of the closed forms against the simulated flooding baseline.
#include "analysis/cost_model.hpp"
#include "bench_util.hpp"
#include "core/flooding.hpp"
#include "net/placement.hpp"
#include "net/spanning_tree.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace dirq;
  bench::print_header("Section 5 — analytical cost model",
                      "ICPPW'06 DirQ paper, Eqs. (3)-(8), Section 5");

  metrics::Table table({"k", "d", "nodes", "CFTotal", "CQDmax", "CUDmax",
                        "fMax", "sim_flood"});
  for (std::int64_t k : {2, 3, 4, 8}) {
    for (std::int64_t d : {1, 2, 3, 4}) {
      if (analysis::tree_nodes(k, d) > 5000) continue;
      net::Topology topo = net::knary_tree(static_cast<std::size_t>(k),
                                           static_cast<std::size_t>(d));
      const core::FloodOutcome flood = core::FloodingScheme(topo).flood_from(0);
      table.add_row({std::to_string(k), std::to_string(d),
                     std::to_string(analysis::tree_nodes(k, d)),
                     std::to_string(analysis::flooding_cost(k, d)),
                     std::to_string(analysis::cqd_max(k, d)),
                     std::to_string(analysis::cud_max(k, d)),
                     metrics::fmt(analysis::f_max(k, d), 4),
                     std::to_string(flood.cost())});
    }
  }
  table.print(std::cout);

  std::cout << "\nPaper worked example (Section 5.3): k=2, d=4 -> fMax = "
            << metrics::fmt(analysis::f_max(2, 4), 4)
            << "  (paper reports ~0.76)\n\n";

  // The runtime bound for the actual evaluation topology (50 random nodes).
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  net::SpanningTree tree(topo, 0);
  std::int64_t internal = 0;
  for (NodeId u : tree.bfs_order()) {
    if (!tree.children(u).empty()) ++internal;
  }
  const auto n = static_cast<std::int64_t>(topo.alive_count());
  const auto links = static_cast<std::int64_t>(topo.link_count());
  metrics::Table g({"metric", "value"});
  g.add_row({"nodes", std::to_string(n)});
  g.add_row({"links", std::to_string(links)});
  g.add_row({"tree max branching (k)", std::to_string(tree.max_branching())});
  g.add_row({"tree depth (d)", std::to_string(tree.max_depth())});
  g.add_row({"CFTotal (graph)",
             std::to_string(analysis::flooding_cost_graph(n, links))});
  g.add_row({"CQDmax (graph)",
             std::to_string(analysis::cqd_max_graph(n, internal))});
  g.add_row({"CUDmax (graph)", std::to_string(analysis::cud_max_graph(n))});
  g.add_row({"fMax (graph)",
             metrics::fmt(analysis::f_max_graph(n, links, internal), 4)});
  std::cout << "Runtime bound for the paper's 50-node random topology "
               "(seed 42):\n";
  g.print(std::cout);
  return 0;
}

// Ablation A3 — cost sensitivity to the location and spread of the
// relevant nodes, validating the paper's §5.2 discussion:
//
//   "if the nodes relevant to the query are located close to the root, the
//    dissemination cost will be much lower ... the greater the spread of
//    the relevant nodes, the greater the dissemination cost."
//
// Three scenarios on a complete 3-ary tree of depth 4 (121 nodes), each
// with exactly 27 source nodes:
//   clustered-shallow — the 27 nodes nearest the root (depths 1-3, one arm)
//   clustered-deep    — all 27 leaves of one depth-1 subtree
//   spread-deep       — 27 leaves spread evenly across the whole leaf level
//
// The scenarios run as an explicit-cell ExperimentPlan with a bespoke cell
// body (a crafted-reading world, not the stochastic §7 experiment); the
// runner still schedules them and the sinks render the rows.
#include <vector>

#include "bench_util.hpp"
#include "net/placement.hpp"
#include "net/spanning_tree.hpp"

namespace {

using namespace dirq;

struct SpreadOutcome {
  std::size_t sources = 0;
  std::size_t received = 0;
  CostUnits cost = 0;
};

/// Samples crafted readings (sources get 100+i, everyone else 50) and
/// injects a query covering exactly the sources.
SpreadOutcome run_scenario(const std::vector<NodeId>& sources) {
  net::Topology topo = net::knary_tree(3, 4);
  core::NetworkConfig cfg;
  cfg.mode = core::NetworkConfig::ThetaMode::Fixed;
  cfg.fixed_pct = 2.0;  // theta = 0.44 in temperature units
  core::DirqNetwork net(topo, 0, cfg);

  std::vector<bool> is_source(topo.size(), false);
  for (NodeId s : sources) is_source[s] = true;
  // Leaves-first so the bootstrap cascade settles in one pass.
  const auto order = net.tree().bfs_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (*it == 0) continue;
    const double reading =
        is_source[*it] ? 100.0 + static_cast<double>(*it) : 50.0;
    net.node(*it).sample(kSensorTemperature, reading, 0);
  }
  const core::QueryOutcome out = net.inject(
      query::RangeQuery{1, kSensorTemperature, 99.0, 300.0, 1}, 1);
  return {sources.size(), out.received.size(), out.cost};
}

}  // namespace

int main() {
  bench::print_header("Ablation A3 — source location and spread vs cost",
                      "paper Section 5.2 discussion; DESIGN.md Section 4");

  net::Topology topo = net::knary_tree(3, 4);
  net::SpanningTree tree(topo, 0);

  // clustered-shallow: first 27 BFS members (depths 1..3, skewed near root).
  std::vector<NodeId> shallow;
  for (NodeId u : tree.bfs_order()) {
    if (u != 0 && shallow.size() < 27) shallow.push_back(u);
  }
  // clustered-deep: the 27 leaves under depth-1 node 1.
  std::vector<NodeId> clustered;
  for (NodeId u : tree.subtree(1)) {
    if (tree.children(u).empty()) clustered.push_back(u);
  }
  // spread-deep: every 3rd leaf across the full leaf level.
  std::vector<NodeId> spread;
  const std::vector<NodeId> leaves = tree.leaves();
  for (std::size_t i = 0; i < leaves.size() && spread.size() < 27; i += 3) {
    spread.push_back(leaves[i]);
  }

  const std::vector<std::pair<std::string, std::vector<NodeId>>> scenarios{
      {"clustered-shallow", shallow},
      {"clustered-deep", clustered},
      {"spread-deep", spread}};

  sweep::ExperimentPlan plan("ablation-spread", core::ExperimentConfig{});
  for (const auto& scenario : scenarios) {
    plan.cell(scenario.first, [](core::ExperimentConfig&) {});
  }

  const std::vector<SpreadOutcome> outcomes = sweep::SweepRunner().map(
      plan, [&scenarios](const sweep::PlanCell& cell) {
        return run_scenario(scenarios[cell.index].second);
      });

  const sweep::SweepHeader header{
      "source spread vs cost", plan.name(),
      {"scenario", "sources", "received", "dissemination_cost"}};
  sweep::ConsoleTableSink console(std::cout);
  console.begin(header);
  const std::vector<sweep::PlanCell> cells = plan.cells();
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    console.row({cells[i].label, std::to_string(outcomes[i].sources),
                 std::to_string(outcomes[i].received),
                 std::to_string(outcomes[i].cost)},
                &cells[i], nullptr);
  }
  console.end();
  std::cout << "\nExpected ordering (paper Section 5.2): clustered-shallow < "
               "clustered-deep < spread-deep\n";
  return 0;
}

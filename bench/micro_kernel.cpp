// E8 — microbenchmarks (google-benchmark): throughput of the substrate
// primitives the figure runs lean on. Not a paper figure; engineering due
// diligence for the simulation kernel.
#include <benchmark/benchmark.h>

#include <map>

#include "core/experiment.hpp"
#include "core/gate_scan.hpp"
#include "core/network.hpp"
#include "core/range_table.hpp"
#include "data/fast_field.hpp"
#include "data/field_model.hpp"
#include "net/placement.hpp"
#include "sim/counter_rng.hpp"
#include "net/spatial_index.hpp"
#include "net/topology.hpp"
#include "query/workload.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sweep/plan.hpp"
#include "sweep/runner.hpp"

namespace {

using namespace dirq;

void BM_SchedulerScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    for (int i = 0; i < 1000; ++i) {
      s.schedule_at(i, [] {});
    }
    benchmark::DoNotOptimize(s.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerScheduleDispatch);

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    std::vector<sim::EventHandle> handles;
    handles.reserve(1000);
    for (int i = 0; i < 1000; ++i) handles.push_back(s.schedule_at(i, [] {}));
    for (std::size_t i = 0; i < handles.size(); i += 2) s.cancel(handles[i]);
    benchmark::DoNotOptimize(s.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerCancelHeavy);

void BM_Mt19937Normal(benchmark::State& state) {
  // The pinned field model's draw: one sequential std::normal_distribution
  // step on mt19937_64 — the RNG floor the counter backend removes.
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal(0.0, 1.0));
  }
}
BENCHMARK(BM_Mt19937Normal);

void BM_CounterRngNormal(benchmark::State& state) {
  // The fast field model's draw: hash of (stream, counter) — stateless,
  // O(1) random access. Compare against BM_Mt19937Normal.
  const sim::CounterRng rng(1);
  std::uint64_t counter = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal_at(++counter));
  }
}
BENCHMARK(BM_CounterRngNormal);

void BM_RangeTableObserve(benchmark::State& state) {
  core::RangeTable t;
  sim::Rng rng(2);
  double reading = 20.0;
  for (auto _ : state) {
    reading += rng.uniform(-0.5, 0.5);
    benchmark::DoNotOptimize(t.observe(reading, 1.1));
  }
}
BENCHMARK(BM_RangeTableObserve);

void BM_RangeTableAggregate(benchmark::State& state) {
  core::RangeTable t;
  t.observe(20.0, 1.0);
  for (NodeId c = 1; c <= static_cast<NodeId>(state.range(0)); ++c) {
    t.set_child(c, {10.0 + c, 30.0 + c});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.aggregate());
  }
}
BENCHMARK(BM_RangeTableAggregate)->Arg(2)->Arg(8);

void BM_SpatialIndexBuild(benchmark::State& state) {
  // Grid construction over a scaled random placement (Arg = node count) —
  // the cost Topology::rebuild_links pays instead of the O(n^2) scan.
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(42);
  const net::RandomPlacementConfig cfg = net::scaled_placement(n);
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(rng.uniform(0.0, cfg.area_side));
    ys.push_back(rng.uniform(0.0, cfg.area_side));
  }
  for (auto _ : state) {
    net::SpatialIndex index;
    index.build(xs, ys, cfg.radio_range);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SpatialIndexBuild)->Arg(500)->Arg(2000);

void BM_SpatialIndexQueryVsBruteForce(benchmark::State& state) {
  // One full neighbourhood pass (Arg = node count): grid candidates +
  // exact filter, vs range(1) == 1 selecting the brute-force reference.
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool brute = state.range(1) == 1;
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::scaled_placement(n), rng);
  for (auto _ : state) {
    if (brute) {
      benchmark::DoNotOptimize(topo.brute_force_adjacency());
    } else {
      // Grid path: rebuilt adjacency via add/kill round-trip is awkward to
      // isolate, so measure the same work rebuild_links does — candidates
      // + distance filter per node.
      std::size_t links = 0;
      std::vector<NodeId> cand;
      net::SpatialIndex index;
      std::vector<double> xs, ys;
      for (const net::Node& node : topo.nodes()) {
        xs.push_back(node.x);
        ys.push_back(node.y);
      }
      index.build(xs, ys, topo.radio_range());
      for (const net::Node& node : topo.nodes()) {
        cand.clear();
        index.candidates(node.x, node.y, cand);
        for (NodeId j : cand) {
          if (j > node.id && topo.distance(node.id, j) <= topo.radio_range()) {
            ++links;
          }
        }
      }
      benchmark::DoNotOptimize(links);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SpatialIndexQueryVsBruteForce)
    ->Args({500, 0})
    ->Args({500, 1})
    ->Args({2000, 0})
    ->Args({2000, 1});

void BM_RangeTableChildLookupFlat(benchmark::State& state) {
  // Flat (sorted-vector) child-tuple lookup — the shipped representation.
  core::RangeTable t;
  for (NodeId c = 0; c < static_cast<NodeId>(state.range(0)); ++c) {
    t.set_child(c * 3, {10.0 + c, 30.0 + c});
  }
  NodeId probe = 0;
  for (auto _ : state) {
    probe = (probe + 3) % static_cast<NodeId>(state.range(0) * 3);
    benchmark::DoNotOptimize(t.child(probe));
  }
}
BENCHMARK(BM_RangeTableChildLookupFlat)->Arg(4)->Arg(8);

void BM_RangeTableChildLookupMap(benchmark::State& state) {
  // The pre-refactor std::map representation, kept here as the comparison
  // baseline for the flat path above.
  std::map<NodeId, core::RangeEntry> children;
  for (NodeId c = 0; c < static_cast<NodeId>(state.range(0)); ++c) {
    children.insert_or_assign(c * 3, core::RangeEntry{10.0 + c, 30.0 + c});
  }
  NodeId probe = 0;
  for (auto _ : state) {
    probe = (probe + 3) % static_cast<NodeId>(state.range(0) * 3);
    benchmark::DoNotOptimize(children.find(probe));
  }
}
BENCHMARK(BM_RangeTableChildLookupMap)->Arg(4)->Arg(8);

void BM_FieldReadingBatch(benchmark::State& state) {
  // One full epoch of the batch reading plane at 500 nodes x 4 types:
  // advance + one readings() call per type. Arg selects the backend
  // (0 = pinned sequential AR(1), 1 = fast counter-based) — the
  // apples-to-apples cost of the workload generator per epoch.
  const bool fast = state.range(0) == 1;
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::scaled_placement(500), rng);
  const auto env = data::make_environment(
      fast ? data::EnvironmentBackend::Fast : data::EnvironmentBackend::Pinned,
      topo, 4, rng.substream("env"));
  std::vector<NodeId> ids(topo.size());
  for (NodeId u = 0; u < topo.size(); ++u) ids[u] = u;
  std::vector<double> out(topo.size());
  std::int64_t epoch = 0;
  for (auto _ : state) {
    env->advance_to(++epoch);
    for (SensorType t = 0; t < 4; ++t) {
      env->readings(t, ids, out);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ids.size()) * 4);
}
BENCHMARK(BM_FieldReadingBatch)->Arg(0)->Arg(1);

void BM_FieldEpochAdvance(benchmark::State& state) {
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  data::Environment env(topo, 4, rng.substream("env"));
  std::int64_t epoch = 0;
  for (auto _ : state) {
    env.advance_to(++epoch);
    benchmark::DoNotOptimize(env.reading(1, kSensorTemperature));
  }
}
BENCHMARK(BM_FieldEpochAdvance);

void BM_QueryInject(benchmark::State& state) {
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  data::Environment env(topo, 4, rng.substream("env"));
  core::NetworkConfig ncfg;
  core::DirqNetwork net(topo, 0, ncfg);
  env.advance_to(0);
  net.process_epoch(env, 0);
  query::WorkloadGenerator gen(topo, net.tree(), env,
                               query::WorkloadConfig{0.4, 0.02},
                               rng.substream("wl"));
  std::int64_t epoch = 0;
  for (auto _ : state) {
    ++epoch;
    const query::RangeQuery q = gen.next(epoch);
    benchmark::DoNotOptimize(net.inject(q, epoch));
  }
}
BENCHMARK(BM_QueryInject);

void BM_FullEpochLoop(benchmark::State& state) {
  // One sensing epoch of the whole 50-node network (sampling + update
  // propagation) — the inner loop of every figure run.
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  data::Environment env(topo, 4, rng.substream("env"));
  core::NetworkConfig ncfg;
  core::DirqNetwork net(topo, 0, ncfg);
  std::int64_t epoch = -1;
  for (auto _ : state) {
    ++epoch;
    env.advance_to(epoch);
    net.process_epoch(env, epoch);
  }
}
BENCHMARK(BM_FullEpochLoop);

void BM_ParallelEpochShardScaling(benchmark::State& state) {
  // Tree-sharded multi-sink epochs: 4 sinks == 4 shards over 500 nodes on
  // the fast backend, Arg = worker count. The alignas(64) EpochShardCtx
  // keeps shard ledgers off each other's cache lines; on a multi-core
  // host 1 -> 2 -> 4 threads should show wall-clock scaling (the guarded
  // check lives in tools/perf_smoke.sh — this bench is for profiling it).
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::scaled_placement(500), rng);
  data::FastEnvironment env(topo, 4, rng.substream("env"));
  core::NetworkConfig ncfg;
  core::DirqNetwork net(topo, {0, 125, 250, 375}, ncfg);
  net.set_threads(static_cast<unsigned>(state.range(0)));
  std::int64_t epoch = -1;
  for (auto _ : state) {
    ++epoch;
    env.advance_to(epoch);
    net.process_epoch(env, epoch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(topo.size()));
}
BENCHMARK(BM_ParallelEpochShardScaling)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_GateScan(benchmark::State& state) {
  // The sampling-gate sweep at plan scale (4096 slots, ~half due):
  // range(0) == 0 is the two-pass branch-light path (gate_scan_mask is
  // the loop gcc auto-vectorizes at -O3 even on baseline SSE2 — verify
  // with `g++ -O3 -fopt-info-vec` on any TU including gate_scan.hpp);
  // range(0) == 1 is the branchy scalar reference gate_filter_ref.
  const bool branchy = state.range(0) == 1;
  constexpr std::size_t kN = 4096;
  std::vector<std::int64_t> due(kN);
  std::vector<NodeId> nodes(kN);
  sim::Rng rng(7);
  for (std::size_t j = 0; j < kN; ++j) {
    due[j] = rng.uniform_int(0, 20);
    nodes[j] = static_cast<NodeId>(j);
  }
  std::vector<std::uint8_t> mask(kN);
  std::vector<NodeId> out(kN);
  const std::int64_t epoch = 10;
  for (auto _ : state) {
    std::size_t m = 0;
    if (branchy) {
      m = core::gate_filter_ref(due.data(), nodes.data(), 0, kN, epoch,
                                out.data());
    } else {
      core::gate_scan_mask(due.data(), kN, epoch, mask.data());
      m = core::gate_compact(nodes.data(), mask.data(), 0, kN, out.data());
    }
    benchmark::DoNotOptimize(m);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_GateScan)->Arg(0)->Arg(1);

void BM_Flooding50Nodes(benchmark::State& state) {
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  core::FloodingScheme flood(topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flood.flood_from(0));
  }
}
BENCHMARK(BM_Flooding50Nodes);

void BM_SweepRunnerGrid(benchmark::State& state) {
  // A small §7-shaped grid (2 theta modes × 2 seeds of a 300-epoch,
  // 20-node run) through the sweep runner — measures the orchestration
  // overhead plus the scaling across worker threads (Arg = pool size).
  sweep::ExperimentPlan plan("micro-grid", [] {
    core::ExperimentConfig cfg = sweep::paper_config();
    cfg.placement.node_count = 20;
    cfg.epochs = 300;
    cfg.keep_records = false;
    return cfg;
  }());
  plan.axis(sweep::theta_axis({sweep::atc(), sweep::fixed_theta(5.0)}))
      .axis(sweep::seed_axis({1, 2}));
  sweep::SweepOptions opts;
  opts.threads = static_cast<unsigned>(state.range(0));
  const sweep::SweepRunner runner(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(plan));
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_SweepRunnerGrid)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();

// dirqsim — command-line front end for the experiment driver.
//
//   dirqsim [options]
//     --seed N            master seed                      (default 42)
//     --nodes N           network size                     (default 50)
//     --epochs N          sensing epochs                   (default 20000)
//     --query-period N    epochs between queries           (default 20)
//     --relevant F        target involved fraction 0..1    (default 0.4)
//     --loss F            channel drop probability [0,1)   (default 0)
//     --mac NAME          transport: instant | lmac        (default instant)
//     --theta PCT         fixed threshold in % of span     (default: ATC)
//     --atc               adaptive threshold control       (default)
//     --sampling F        enable §8 sampling suppression with margin F
//     --series            also print the per-100-epoch update TSV series
//     --help
//
//   dirqsim sweep [options]   — declarative grid on a worker pool
//     list-valued axis flags (--theta atc,3,5 --relevant 0.2,0.4 ...),
//     --threads N, --json FILE; see `dirqsim sweep --help`.
//
// Prints a run summary (costs, accuracy, cost ratio vs flooding) — the
// one-command way to reproduce any cell of the paper's evaluation grid.
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "dirq/dirq.hpp"

namespace {

[[noreturn]] void usage(int code) {
  std::cout <<
      "dirqsim — run one DirQ experiment (ICPPW'06 reproduction)\n"
      "  --seed N          master seed (default 42)\n"
      "  --nodes N         network size (default 50)\n"
      "  --epochs N        sensing epochs (default 20000)\n"
      "  --query-period N  epochs between queries (default 20)\n"
      "  --relevant F      target involved fraction in (0,1] (default 0.4)\n"
      "  --loss F          channel drop probability in [0,1) (default 0)\n"
      "  --mac NAME        transport backend: instant (default) or lmac\n"
      "                    (queries/updates ride the TDMA slot schedule)\n"
      "  --field NAME      environment backend: pinned (default; the\n"
      "                    golden sequential AR(1) streams) or fast\n"
      "                    (counter-based, O(1) random access — for\n"
      "                    large-topology runs)\n"
      "  --theta PCT       fixed threshold, % of sensor span (default: ATC)\n"
      "  --atc             adaptive threshold control (default mode)\n"
      "  --sinks SPEC      multi-sink query plane: a bare count N (roots\n"
      "                    spread over the field; 1 = the paper's single\n"
      "                    root at node 0, the default) or an explicit\n"
      "                    comma list of node ids (e.g. 0,12,37)\n"
      "  --routing NAME    query admission policy across sinks:\n"
      "                    admission (default; depth x load argmin) or\n"
      "                    roundrobin\n"
      "  --multi-frac F    fraction of queries drawn as multi-attribute\n"
      "                    conjunctions in [0,1] (default 0)\n"
      "  --multi-count N   predicates per multi-attribute query (default 2)\n"
      "  --sampling F      enable sampling suppression, margin F of theta\n"
      "  --burst SPEC      query arrivals: 'smooth' (default) or L/G —\n"
      "                    L-epoch bursts separated by G silent epochs\n"
      "  --threads N       intra-run worker count for the epoch loop\n"
      "                    (default 1 — the golden sequential path; 0 =\n"
      "                    all hardware threads; every backend honours it,\n"
      "                    byte-identical to 1 — lmac keeps slot delivery\n"
      "                    sequential and parallelises the epoch phases)\n"
      "  --series          print the update-per-100-epoch TSV series\n"
      "  --help            this text\n"
      "\n"
      "subcommand: dirqsim sweep — run a declarative grid of cells on a\n"
      "worker pool (list-valued axis flags, --threads N, --json FILE);\n"
      "see `dirqsim sweep --help`.\n"
      "subcommand: dirqsim serve — long-lived query front-end: open-loop\n"
      "arrivals, admission batching, result cache, latency percentiles;\n"
      "see `dirqsim serve --help`.\n";
  std::exit(code);
}

using UsageFn = void (*)(int);

double parse_double(const char* flag, const char* value,
                    UsageFn on_error = usage) {
  if (value == nullptr) {
    std::cerr << "missing value for " << flag << "\n";
    on_error(2);
  }
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    std::cerr << "bad value for " << flag << ": " << value << "\n";
    on_error(2);
  }
  return 0.0;  // unreachable
}

/// Strict integer parse: the whole token must be a base-10 integer.
/// Fractions ("2.5"), trailing junk ("10x"), and overflow are errors —
/// never silently truncated the way a stod-then-cast would.
std::int64_t parse_int(const char* flag, const char* value,
                       UsageFn on_error = usage) {
  if (value == nullptr) {
    std::cerr << "missing value for " << flag << "\n";
    on_error(2);
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE) {
    std::cerr << flag << " expects an integer, got: " << value << "\n";
    on_error(2);
  }
  return static_cast<std::int64_t>(v);
}

/// parse_int plus a >= 1 check, for counts where 0 or a negative would
/// otherwise wrap through a size_t/uint64_t cast into a huge value.
std::int64_t parse_positive_int(const char* flag, const char* value,
                                UsageFn on_error = usage) {
  const std::int64_t v = parse_int(flag, value, on_error);
  if (v < 1) {
    std::cerr << flag << " must be a positive integer, got: " << value << "\n";
    on_error(2);
  }
  return v;
}

/// Strict unsigned parse covering the full uint64 seed domain (strtoll
/// would reject valid seeds above INT64_MAX). Negatives are an error, not
/// a wrap: strtoull accepts a leading '-', so check for it explicitly.
std::uint64_t parse_uint(const char* flag, const char* value,
                         UsageFn on_error = usage) {
  if (value == nullptr) {
    std::cerr << "missing value for " << flag << "\n";
    on_error(2);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE ||
      std::string(value).find('-') != std::string::npos) {
    std::cerr << flag << " expects a non-negative integer, got: " << value
              << "\n";
    on_error(2);
  }
  return static_cast<std::uint64_t>(v);
}

/// Strict environment-backend parse: exactly "pinned" or "fast" (same
/// strictness contract as parse_int — anything else is an error, never a
/// silent default). Shared by the single-run and sweep paths.
dirq::data::EnvironmentBackend parse_field_backend(const char* value,
                                                   UsageFn on_error) {
  const std::string s = value != nullptr ? value : "";
  if (s == "pinned") return dirq::data::EnvironmentBackend::Pinned;
  if (s == "fast") return dirq::data::EnvironmentBackend::Fast;
  std::cerr << "--field must be 'pinned' or 'fast', got: " << s << "\n";
  on_error(2);
  return dirq::data::EnvironmentBackend::Pinned;  // unreachable
}

/// Parses one query-arrival shape: "smooth" (no bursts) or "LENGTH/GAP"
/// in epochs (gap 0 = back-to-back bursts, i.e. smooth with extra steps).
/// Shared by the single-run and sweep paths so the two never drift.
std::pair<std::int64_t, std::int64_t> parse_burst_spec(const std::string& s,
                                                       UsageFn on_error) {
  if (s == "smooth") return {0, 0};
  const std::size_t slash = s.find('/');
  if (slash == std::string::npos) {
    std::cerr << "--burst expects 'smooth' or LENGTH/GAP (epochs), got: " << s
              << "\n";
    on_error(2);
  }
  const std::int64_t length = parse_positive_int(
      "--burst length", s.substr(0, slash).c_str(), on_error);
  const std::int64_t gap =
      parse_int("--burst gap", s.substr(slash + 1).c_str(), on_error);
  if (gap < 0) {
    std::cerr << "--burst gap must be >= 0, got: " << s << "\n";
    on_error(2);
  }
  return {length, gap};
}

[[noreturn]] void sweep_usage(int code) {
  std::cout <<
      "dirqsim sweep — run a declarative experiment grid on a worker pool\n"
      "\n"
      "Axis flags take comma-separated lists; the plan is the cartesian\n"
      "product of every axis. Results print in plan order regardless of\n"
      "which thread finished first.\n"
      "  --theta LIST      theta modes: 'atc' and/or fixed percents\n"
      "                    (e.g. atc,3,5,9; default atc)\n"
      "  --relevant LIST   involved fractions in (0,1] (default 0.4)\n"
      "  --seeds LIST      master seeds (default 42)\n"
      "  --loss LIST       drop probabilities in [0,1) (default 0)\n"
      "  --mac LIST        transports: instant,lmac (default instant)\n"
      "  --nodes LIST      network sizes (default 50; sizes beyond 50 use\n"
      "                    density-preserving scaled placement)\n"
      "  --field LIST      environment backends: pinned and/or fast\n"
      "                    (default pinned)\n"
      "  --burst LIST      query-arrival shapes: 'smooth' and/or L/G pairs\n"
      "                    (burst length / gap in epochs, e.g. 200/600)\n"
      "  --sinks LIST      sink counts, roots spread over the field\n"
      "                    (default 1 — the paper's single root)\n"
      "  --paper-grid      the paper's Section-7 grid: theta atc,3,5,9 x\n"
      "                    relevant 0.2,0.4,0.6 (overrides those two axes)\n"
      "  --scale-tier      the large-topology tier: nodes 500,1000,2000\n"
      "                    (overrides --nodes)\n"
      "  --epochs N        sensing epochs per cell (default 20000)\n"
      "  --query-period N  epochs between queries (default 20)\n"
      "  --threads N       worker pool size (default: hardware concurrency)\n"
      "  --json FILE       write the dirq.sweep.v1 JSON document to FILE\n"
      "  --no-timing       omit wall-clock/RSS from the JSON (byte-stable\n"
      "                    across runs and thread counts)\n"
      "  --tsv             also print the grid as a TSV block\n"
      "  --help            this text\n";
  std::exit(code);
}

std::vector<std::string> split_list(const char* flag, const char* value) {
  if (value == nullptr || *value == '\0') {
    std::cerr << "missing value for " << flag << "\n";
    sweep_usage(2);
  }
  const std::size_t len = std::strlen(value);
  if (value[len - 1] == ',') {
    std::cerr << flag << ": trailing comma in list '" << value << "'\n";
    sweep_usage(2);
  }
  std::vector<std::string> out;
  std::istringstream in(value);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) {
      std::cerr << flag << ": empty element in list '" << value << "'\n";
      sweep_usage(2);
    }
    out.push_back(item);
  }
  if (out.empty()) {
    std::cerr << flag << ": empty list\n";
    sweep_usage(2);
  }
  return out;
}

double parse_list_double(const char* flag, const std::string& item) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(item.c_str(), &end);
  if (end == item.c_str() || *end != '\0' || errno == ERANGE) {
    std::cerr << flag << " expects numbers, got: " << item << "\n";
    sweep_usage(2);
  }
  return v;
}

int run_sweep(int argc, char** argv) {
  using namespace dirq;

  std::vector<std::string> theta_list{"atc"};
  std::vector<double> relevant_list{0.4};
  std::vector<std::uint64_t> seed_list{42};
  std::vector<double> loss_list{0.0};
  std::vector<std::string> mac_list{"instant"};
  std::vector<std::size_t> nodes_list{50};
  std::vector<std::size_t> sinks_list{1};
  std::vector<std::pair<std::int64_t, std::int64_t>> burst_list{{0, 0}};
  std::vector<dirq::data::EnvironmentBackend> field_list{
      dirq::data::EnvironmentBackend::Pinned};
  bool paper = false;
  bool scale_tier = false;
  std::int64_t epochs = 20000;
  std::int64_t query_period = 20;
  unsigned threads = 0;
  std::string json_path;
  bool timing = true;
  bool tsv = false;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--help" || arg == "-h") {
      sweep_usage(0);
    } else if (arg == "--theta") {
      theta_list = split_list("--theta", next);
      ++i;
    } else if (arg == "--relevant") {
      relevant_list.clear();
      for (const std::string& s : split_list("--relevant", next)) {
        relevant_list.push_back(parse_list_double("--relevant", s));
      }
      ++i;
    } else if (arg == "--seeds") {
      seed_list.clear();
      for (const std::string& s : split_list("--seeds", next)) {
        seed_list.push_back(parse_uint("--seeds", s.c_str(), sweep_usage));
      }
      ++i;
    } else if (arg == "--loss") {
      loss_list.clear();
      for (const std::string& s : split_list("--loss", next)) {
        loss_list.push_back(parse_list_double("--loss", s));
      }
      ++i;
    } else if (arg == "--mac") {
      mac_list = split_list("--mac", next);
      ++i;
    } else if (arg == "--nodes") {
      nodes_list.clear();
      for (const std::string& s : split_list("--nodes", next)) {
        nodes_list.push_back(static_cast<std::size_t>(
            parse_positive_int("--nodes", s.c_str(), sweep_usage)));
      }
      ++i;
    } else if (arg == "--sinks") {
      sinks_list.clear();
      for (const std::string& s : split_list("--sinks", next)) {
        sinks_list.push_back(static_cast<std::size_t>(
            parse_positive_int("--sinks", s.c_str(), sweep_usage)));
      }
      ++i;
    } else if (arg == "--burst") {
      burst_list.clear();
      for (const std::string& s : split_list("--burst", next)) {
        burst_list.push_back(parse_burst_spec(s, sweep_usage));
      }
      ++i;
    } else if (arg == "--field") {
      field_list.clear();
      for (const std::string& s : split_list("--field", next)) {
        field_list.push_back(parse_field_backend(s.c_str(), sweep_usage));
      }
      ++i;
    } else if (arg == "--paper-grid") {
      paper = true;
    } else if (arg == "--scale-tier") {
      scale_tier = true;
    } else if (arg == "--epochs") {
      epochs = parse_positive_int("--epochs", next, sweep_usage);
      ++i;
    } else if (arg == "--query-period") {
      query_period = parse_positive_int("--query-period", next, sweep_usage);
      ++i;
    } else if (arg == "--threads") {
      // 0 is meaningful: use hardware concurrency (the documented default).
      const std::int64_t v = parse_int("--threads", next, sweep_usage);
      if (v < 0 || v > 4096) {
        std::cerr << "--threads must be in [0, 4096], got: " << next << "\n";
        sweep_usage(2);
      }
      threads = static_cast<unsigned>(v);
      ++i;
    } else if (arg == "--json") {
      if (next == nullptr) {
        std::cerr << "missing value for --json\n";
        sweep_usage(2);
      }
      json_path = next;
      ++i;
    } else if (arg == "--no-timing") {
      timing = false;
    } else if (arg == "--tsv") {
      tsv = true;
    } else {
      std::cerr << "unknown sweep option: " << arg << "\n";
      sweep_usage(2);
    }
  }

  // Axis construction. Every axis is always present (single-valued axes
  // still label their coordinate) so the output schema is uniform.
  sweep::ExperimentPlan plan("dirqsim-sweep", [&] {
    core::ExperimentConfig base = sweep::paper_config(seed_list.front());
    base.epochs = epochs;
    base.query_period = query_period;
    base.keep_records = false;
    return base;
  }());
  if (paper) {
    plan.axis(sweep::paper_theta_axis());
    plan.axis(sweep::paper_relevant_axis());
  } else {
    std::vector<sweep::AxisValue> thetas;
    for (const std::string& t : theta_list) {
      if (t == "atc" || t == "ATC") {
        thetas.push_back(sweep::atc());
      } else {
        const double pct = parse_list_double("--theta", t);
        if (!(pct > 0.0 && pct <= 100.0)) {
          std::cerr << "--theta fixed percents must be in (0, 100]\n";
          return 2;
        }
        thetas.push_back(sweep::fixed_theta(pct));
      }
    }
    plan.axis(sweep::theta_axis(std::move(thetas)));
    for (const double f : relevant_list) {
      if (!(f > 0.0 && f <= 1.0)) {
        std::cerr << "--relevant fractions must be in (0, 1]\n";
        return 2;
      }
    }
    plan.axis(sweep::relevant_axis(relevant_list));
  }
  plan.axis(sweep::seed_axis(seed_list));
  for (const double l : loss_list) {
    if (!(l >= 0.0 && l < 1.0)) {
      std::cerr << "--loss rates must be in [0, 1)\n";
      return 2;
    }
  }
  plan.axis(sweep::loss_axis(loss_list));
  std::vector<core::TransportKind> transports;
  for (const std::string& m : mac_list) {
    if (m == "instant") {
      transports.push_back(core::TransportKind::Instant);
    } else if (m == "lmac") {
      transports.push_back(core::TransportKind::Lmac);
    } else {
      std::cerr << "--mac must list 'instant' and/or 'lmac', got: " << m << "\n";
      return 2;
    }
  }
  plan.axis(sweep::transport_axis(transports));
  plan.axis(scale_tier ? sweep::scale_nodes_axis()
                       : sweep::nodes_axis(nodes_list));
  plan.axis(sweep::sinks_axis(sinks_list));
  plan.axis(sweep::burst_axis(burst_list));
  plan.axis(sweep::field_axis(field_list));

  std::size_t total = 0;
  try {
    total = plan.size();
  } catch (const std::exception& e) {
    std::cerr << "dirqsim sweep: " << e.what() << "\n";
    return 2;
  }

  sweep::SweepOptions opts;
  opts.threads = threads;
  std::size_t done = 0;
  opts.progress = [&done, total](const sweep::PlanCell& cell, bool ok) {
    ++done;
    std::cerr << "[" << done << "/" << total << "] " << cell.label
              << (ok ? "" : "  <failed>") << "\n";
  };

  // Open the JSON target before spending any compute: an unwritable path
  // must fail in milliseconds, not after the whole grid has run.
  sweep::ConsoleTableSink console(std::cout);
  sweep::TsvSink tsv_sink(std::cout);
  std::ofstream json_file;
  std::vector<sweep::ResultSink*> sinks{&console};
  if (tsv) sinks.push_back(&tsv_sink);
  std::optional<sweep::JsonSink> json_sink;
  if (!json_path.empty()) {
    json_file.open(json_path);
    if (!json_file) {
      std::cerr << "dirqsim sweep: cannot open " << json_path
                << " for writing\n";
      return 1;
    }
    json_sink.emplace(json_file, timing);
    sinks.push_back(&*json_sink);
  }

  const sweep::SweepRunner runner(opts);
  std::cerr << "dirqsim sweep: " << total << " cells on "
            << runner.thread_count(total) << " thread(s)\n";
  const std::vector<sweep::CellResult> results = runner.run(plan);

  const sweep::SweepHeader header{
      "dirqsim sweep", plan.name(),
      {"theta", "relevant", "seed", "loss", "mac", "nodes", "sinks", "burst",
       "field", "dirq_total", "flood_total", "ratio", "overshoot_%",
       "coverage_%", "updates"}};
  const sweep::RowMapper mapper = [](const sweep::CellResult& r) {
    const core::ExperimentResults& res = r.results;
    return std::vector<std::string>{
        *r.cell.coordinate("theta"),
        *r.cell.coordinate("relevant"),
        *r.cell.coordinate("seed"),
        *r.cell.coordinate("loss"),
        *r.cell.coordinate("mac"),
        *r.cell.coordinate("nodes"),
        *r.cell.coordinate("sinks"),
        *r.cell.coordinate("burst"),
        *r.cell.coordinate("field"),
        std::to_string(res.ledger.total()),
        std::to_string(res.flooding_total),
        metrics::fmt(res.cost_ratio(), 3),
        metrics::fmt(res.overshoot_pct.mean()),
        metrics::fmt(res.coverage_pct.mean()),
        std::to_string(res.updates_transmitted)};
  };

  sweep::report(header, results, mapper, sinks);
  if (!json_path.empty()) {
    std::cerr << "dirqsim sweep: wrote " << json_path << "\n";
  }

  for (const sweep::CellResult& r : results) {
    if (!r.ok()) {
      std::cerr << "dirqsim sweep: cell '" << r.cell.label
                << "' failed: " << r.error << "\n";
      return 1;
    }
  }
  return 0;
}

[[noreturn]] void serve_usage(int code) {
  std::cout <<
      "dirqsim serve — long-lived query front-end over a live DirQ network\n"
      "\n"
      "A virtual-time pacer advances the network one epoch per virtual\n"
      "second while an open-loop generator pushes query arrivals at the\n"
      "front-end (admission batching + range-result cache). Same config =>\n"
      "byte-identical dirq.serve.v1 JSON, at any --threads value.\n"
      "  --rate R          mean arrivals per epoch (default 10)\n"
      "  --duration E      virtual epochs to run (default 2000)\n"
      "  --arrivals NAME   arrival shape: poisson (default) or burst\n"
      "  --burst L/G       burst window: L arrival epochs, G silent epochs\n"
      "                    (default 50/150; implies --arrivals burst)\n"
      "  --cache MODE      result cache: on (default) or off\n"
      "  --cache-entries N cache capacity, FIFO eviction (default 1024)\n"
      "  --stale N         serve stale entries up to N epochs old after the\n"
      "                    update counter moves (default 64)\n"
      "  --max-inject N    network injections per boundary (default 4);\n"
      "                    cache hits are free and never consume this\n"
      "  --inject-period N epochs between injection boundaries (default 1)\n"
      "  --queue N         arrival queue bound, strict FIFO (default 8192)\n"
      "  --pool N          distinct predicates in the pool (default 32)\n"
      "  --subset-frac F   fraction of arrivals narrowed to the middle half\n"
      "                    of their predicate (default 0.25)\n"
      "  --multi-frac F    multi-attribute (uncacheable) slice in [0,1]\n"
      "  --multi-count N   predicates per multi-attribute query (default 2)\n"
      "  --trace FILE      replay a recorded TSV trace instead of the\n"
      "                    synthetic stream (epoch, type, lo, hi rows)\n"
      "  --pace R          pace to R epochs per wall second (default 0 =\n"
      "                    as fast as possible; never affects results)\n"
      "  --sinks SPEC      sink count or explicit comma list of root ids\n"
      "  --routing NAME    admission (default) or roundrobin\n"
      "  --seed N          master seed (default 42)\n"
      "  --nodes N         network size (default 50)\n"
      "  --relevant F      predicate pool involved fraction (default 0.4)\n"
      "  --theta PCT       fixed threshold, % of span (default: ATC)\n"
      "  --atc             adaptive threshold control (default mode)\n"
      "  --field NAME      environment backend: pinned (default) or fast\n"
      "  --threads N       epoch-loop workers (default 1; 0 = all cores)\n"
      "  --json FILE       write the dirq.serve.v1 JSON document to FILE\n"
      "  --help            this text\n";
  std::exit(code);
}

int run_serve(int argc, char** argv) {
  using namespace dirq;

  serve::ServeConfig cfg;
  cfg.exp.network.mode = core::NetworkConfig::ThetaMode::Atc;
  cfg.exp.keep_records = false;
  std::optional<std::size_t> node_count;
  std::string json_path;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--help" || arg == "-h") {
      serve_usage(0);
    } else if (arg == "--rate") {
      cfg.trace.rate = parse_double("--rate", next, serve_usage);
      if (!(cfg.trace.rate > 0.0)) {
        std::cerr << "--rate must be > 0\n";
        return 2;
      }
      ++i;
    } else if (arg == "--duration") {
      cfg.duration_epochs =
          parse_positive_int("--duration", next, serve_usage);
      ++i;
    } else if (arg == "--arrivals") {
      const std::string shape = next != nullptr ? next : "";
      if (shape == "poisson") {
        cfg.trace.shape = serve::ArrivalShape::Poisson;
      } else if (shape == "burst") {
        cfg.trace.shape = serve::ArrivalShape::Burst;
      } else {
        std::cerr << "--arrivals must be 'poisson' or 'burst', got: " << shape
                  << "\n";
        return 2;
      }
      ++i;
    } else if (arg == "--burst") {
      if (next == nullptr) {
        std::cerr << "missing value for --burst\n";
        serve_usage(2);
      }
      const auto [length, gap] = parse_burst_spec(next, serve_usage);
      if (length == 0) {
        std::cerr << "--burst expects LENGTH/GAP for serve (no 'smooth')\n";
        return 2;
      }
      cfg.trace.shape = serve::ArrivalShape::Burst;
      cfg.trace.burst_length_epochs = length;
      cfg.trace.burst_gap_epochs = gap;
      ++i;
    } else if (arg == "--cache") {
      const std::string mode = next != nullptr ? next : "";
      if (mode == "on") {
        cfg.front_end.cache_enabled = true;
      } else if (mode == "off") {
        cfg.front_end.cache_enabled = false;
      } else {
        std::cerr << "--cache must be 'on' or 'off', got: " << mode << "\n";
        return 2;
      }
      ++i;
    } else if (arg == "--cache-entries") {
      cfg.front_end.cache_entries = static_cast<std::size_t>(
          parse_positive_int("--cache-entries", next, serve_usage));
      ++i;
    } else if (arg == "--stale") {
      const std::int64_t v = parse_int("--stale", next, serve_usage);
      if (v < 0) {
        std::cerr << "--stale must be >= 0\n";
        return 2;
      }
      cfg.front_end.stale_epochs = v;
      ++i;
    } else if (arg == "--max-inject") {
      cfg.front_end.max_inject_per_boundary = static_cast<std::size_t>(
          parse_positive_int("--max-inject", next, serve_usage));
      ++i;
    } else if (arg == "--inject-period") {
      cfg.front_end.inject_period =
          parse_positive_int("--inject-period", next, serve_usage);
      ++i;
    } else if (arg == "--queue") {
      cfg.front_end.max_queue = static_cast<std::size_t>(
          parse_positive_int("--queue", next, serve_usage));
      ++i;
    } else if (arg == "--pool") {
      cfg.trace.pool_size = static_cast<std::size_t>(
          parse_positive_int("--pool", next, serve_usage));
      ++i;
    } else if (arg == "--subset-frac") {
      cfg.trace.subset_fraction =
          parse_double("--subset-frac", next, serve_usage);
      ++i;
    } else if (arg == "--multi-frac") {
      cfg.trace.multi_attr_fraction =
          parse_double("--multi-frac", next, serve_usage);
      ++i;
    } else if (arg == "--multi-count") {
      cfg.trace.multi_attr_count = static_cast<std::size_t>(
          parse_positive_int("--multi-count", next, serve_usage));
      ++i;
    } else if (arg == "--trace") {
      if (next == nullptr) {
        std::cerr << "missing value for --trace\n";
        serve_usage(2);
      }
      cfg.replay_path = next;
      ++i;
    } else if (arg == "--pace") {
      cfg.pace_epochs_per_sec = parse_double("--pace", next, serve_usage);
      if (!(cfg.pace_epochs_per_sec >= 0.0)) {
        std::cerr << "--pace must be >= 0\n";
        return 2;
      }
      ++i;
    } else if (arg == "--sinks") {
      const std::string spec = next != nullptr ? next : "";
      if (next == nullptr) {
        std::cerr << "missing value for --sinks\n";
        serve_usage(2);
      }
      cfg.exp.sinks.clear();
      if (spec.find(',') == std::string::npos) {
        cfg.exp.sink_count = static_cast<std::size_t>(
            parse_int("--sinks", next, serve_usage));
      } else {
        std::istringstream in(spec);
        std::string item;
        while (std::getline(in, item, ',')) {
          cfg.exp.sinks.push_back(static_cast<dirq::NodeId>(
              parse_int("--sinks", item.c_str(), serve_usage)));
        }
      }
      ++i;
    } else if (arg == "--routing") {
      const std::string policy = next != nullptr ? next : "";
      if (policy == "admission") {
        cfg.exp.routing = core::RoutingPolicy::Admission;
      } else if (policy == "roundrobin") {
        cfg.exp.routing = core::RoutingPolicy::RoundRobin;
      } else {
        std::cerr << "--routing must be 'admission' or 'roundrobin', got: "
                  << policy << "\n";
        return 2;
      }
      ++i;
    } else if (arg == "--seed") {
      cfg.exp.seed = parse_uint("--seed", next, serve_usage);
      ++i;
    } else if (arg == "--nodes") {
      node_count = static_cast<std::size_t>(
          parse_positive_int("--nodes", next, serve_usage));
      ++i;
    } else if (arg == "--relevant") {
      cfg.exp.relevant_fraction =
          parse_double("--relevant", next, serve_usage);
      ++i;
    } else if (arg == "--theta") {
      cfg.exp.network.mode = core::NetworkConfig::ThetaMode::Fixed;
      cfg.exp.network.fixed_pct = parse_double("--theta", next, serve_usage);
      ++i;
    } else if (arg == "--atc") {
      cfg.exp.network.mode = core::NetworkConfig::ThetaMode::Atc;
    } else if (arg == "--field") {
      cfg.exp.field_backend = parse_field_backend(next, serve_usage);
      ++i;
    } else if (arg == "--threads") {
      const std::int64_t v = parse_int("--threads", next, serve_usage);
      if (v < 0 || v > 4096) {
        std::cerr << "--threads must be in [0, 4096], got: " << next << "\n";
        serve_usage(2);
      }
      cfg.exp.threads = static_cast<unsigned>(v);
      ++i;
    } else if (arg == "--json") {
      if (next == nullptr) {
        std::cerr << "missing value for --json\n";
        serve_usage(2);
      }
      json_path = next;
      ++i;
    } else {
      std::cerr << "unknown serve option: " << arg << "\n";
      serve_usage(2);
    }
  }
  if (node_count) {
    cfg.exp.placement = net::scaled_placement(*node_count, cfg.exp.placement);
  }
  if (!(cfg.exp.relevant_fraction > 0.0 && cfg.exp.relevant_fraction <= 1.0)) {
    std::cerr << "--relevant must be in (0, 1]\n";
    return 2;
  }
  if (cfg.exp.network.mode == core::NetworkConfig::ThetaMode::Fixed &&
      !(cfg.exp.network.fixed_pct > 0.0 &&
        cfg.exp.network.fixed_pct <= 100.0)) {
    std::cerr << "--theta must be in (0, 100]\n";
    return 2;
  }

  serve::ServeResults res;
  try {
    res = serve::Server(cfg).run();
  } catch (const std::exception& e) {
    std::cerr << "dirqsim serve: " << e.what() << "\n";
    return 1;
  }

  metrics::Table t({"metric", "value"});
  t.add_row({"mode", cfg.exp.network.mode == core::NetworkConfig::ThetaMode::Atc
                         ? "ATC"
                         : "fixed theta=" +
                               metrics::fmt(cfg.exp.network.fixed_pct, 1) +
                               "%"});
  t.add_row({"field", data::backend_name(cfg.exp.field_backend)});
  t.add_row({"seed", std::to_string(cfg.exp.seed)});
  t.add_row({"nodes", std::to_string(cfg.exp.placement.node_count)});
  t.add_row({"duration (epochs)", std::to_string(res.duration_epochs)});
  if (!cfg.replay_path.empty()) {
    t.add_row({"arrivals", "replay " + cfg.replay_path});
  } else {
    t.add_row({"arrivals",
               std::string(cfg.trace.shape == serve::ArrivalShape::Burst
                               ? "burst"
                               : "poisson") +
                   " @ " + metrics::fmt(cfg.trace.rate, 2) + "/epoch"});
  }
  if (cfg.exp.resolved_sink_count() > 1) {
    std::string roots;
    for (const serve::ServeSinkStats& s : res.sinks) {
      if (!roots.empty()) roots += ',';
      roots += std::to_string(s.root);
    }
    t.add_row({"sinks", std::to_string(res.sinks.size()) + " (roots " +
                            roots + ")"});
    t.add_row({"routing", cfg.exp.routing == core::RoutingPolicy::RoundRobin
                              ? "roundrobin"
                              : "admission"});
  }
  t.add_row({"arrived", std::to_string(res.totals.arrived)});
  t.add_row({"answered", std::to_string(res.totals.answered)});
  t.add_row({"queries/sec (virtual)", metrics::fmt(res.qps(), 3)});
  t.add_row({"injected over network", std::to_string(res.totals.injected)});
  t.add_row({"cache", cfg.front_end.cache_enabled ? "on" : "off"});
  if (cfg.front_end.cache_enabled) {
    const serve::CacheStats& c = res.cache;
    const double hit_rate =
        c.lookups() > 0 ? 100.0 * static_cast<double>(c.hits()) /
                              static_cast<double>(c.lookups())
                        : 0.0;
    t.add_row({"cache hits (fresh/stale)", std::to_string(c.fresh_hits) +
                                               "/" +
                                               std::to_string(c.stale_hits)});
    t.add_row({"cache hit rate %", metrics::fmt(hit_rate, 1)});
    t.add_row({"containment hits", std::to_string(c.containment_hits)});
  }
  t.add_row({"shed (queue full)", std::to_string(res.totals.shed)});
  t.add_row({"peak/final queue depth",
             std::to_string(res.totals.peak_queue_depth) + "/" +
                 std::to_string(res.final_queue_depth)});
  t.add_row({"latency p50/p95/p99 (epochs)",
             std::to_string(res.latency.quantile(0.5)) + "/" +
                 std::to_string(res.latency.quantile(0.95)) + "/" +
                 std::to_string(res.latency.quantile(0.99))});
  if (res.sinks.size() > 1) {
    for (std::size_t k = 0; k < res.sinks.size(); ++k) {
      const metrics::LatencyHistogram& lat = res.sinks[k].latency;
      t.add_row({"sink " + std::to_string(k) + " injected/p99",
                 std::to_string(res.sinks[k].injected) + "/" +
                     std::to_string(lat.quantile(0.99))});
    }
  }
  t.add_row({"update msgs transmitted",
             std::to_string(res.updates_transmitted)});
  t.add_row({"energy total (units)", std::to_string(res.energy_total)});
  t.print(std::cout);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "dirqsim serve: cannot open " << json_path
                << " for writing\n";
      return 1;
    }
    serve::write_serve_json(cfg, res, out);
    std::cerr << "dirqsim serve: wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dirq;

  if (argc > 1 && std::strcmp(argv[1], "sweep") == 0) {
    return run_sweep(argc - 2, argv + 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    return run_serve(argc - 2, argv + 2);
  }

  core::ExperimentConfig cfg;
  cfg.network.mode = core::NetworkConfig::ThetaMode::Atc;
  bool print_series = false;
  std::optional<std::size_t> node_count;  // applied once after parsing

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (arg == "--seed") {
      cfg.seed = parse_uint("--seed", next);
      ++i;
    } else if (arg == "--nodes") {
      node_count =
          static_cast<std::size_t>(parse_positive_int("--nodes", next));
      ++i;
    } else if (arg == "--epochs") {
      cfg.epochs = parse_positive_int("--epochs", next);
      ++i;
    } else if (arg == "--burst") {
      if (next == nullptr) {
        std::cerr << "missing value for --burst\n";
        usage(2);
      }
      std::tie(cfg.burst_length_epochs, cfg.burst_gap_epochs) =
          parse_burst_spec(next, usage);
      ++i;
    } else if (arg == "--query-period") {
      cfg.query_period = parse_positive_int("--query-period", next);
      ++i;
    } else if (arg == "--mac") {
      const std::string mac = next != nullptr ? next : "";
      if (mac == "instant") {
        cfg.transport = core::TransportKind::Instant;
      } else if (mac == "lmac") {
        cfg.transport = core::TransportKind::Lmac;
      } else {
        std::cerr << "--mac must be 'instant' or 'lmac', got: " << mac << "\n";
        return 2;
      }
      ++i;
    } else if (arg == "--field") {
      cfg.field_backend = parse_field_backend(next, usage);
      ++i;
    } else if (arg == "--relevant") {
      cfg.relevant_fraction = parse_double("--relevant", next);
      ++i;
    } else if (arg == "--loss") {
      cfg.loss_rate = parse_double("--loss", next);
      ++i;
    } else if (arg == "--theta") {
      cfg.network.mode = core::NetworkConfig::ThetaMode::Fixed;
      cfg.network.fixed_pct = parse_double("--theta", next);
      ++i;
    } else if (arg == "--atc") {
      cfg.network.mode = core::NetworkConfig::ThetaMode::Atc;
    } else if (arg == "--sinks") {
      // A bare integer is a sink count (spread placement); a comma list is
      // explicit root ids. Bounds (count >= 1, ids inside the topology, no
      // duplicates) are enforced by ExperimentConfig::validate so the CLI
      // and library agree on one error surface.
      const std::string spec = next != nullptr ? next : "";
      if (next == nullptr) {
        std::cerr << "missing value for --sinks\n";
        usage(2);
      }
      cfg.sinks.clear();
      if (spec.find(',') == std::string::npos) {
        cfg.sink_count =
            static_cast<std::size_t>(parse_int("--sinks", next));
      } else {
        for (const std::string& s : [&] {
               std::vector<std::string> out;
               std::istringstream in(spec);
               std::string item;
               while (std::getline(in, item, ',')) out.push_back(item);
               return out;
             }()) {
          cfg.sinks.push_back(static_cast<dirq::NodeId>(
              parse_int("--sinks", s.c_str())));
        }
      }
      ++i;
    } else if (arg == "--routing") {
      const std::string policy = next != nullptr ? next : "";
      if (policy == "admission") {
        cfg.routing = core::RoutingPolicy::Admission;
      } else if (policy == "roundrobin") {
        cfg.routing = core::RoutingPolicy::RoundRobin;
      } else {
        std::cerr << "--routing must be 'admission' or 'roundrobin', got: "
                  << policy << "\n";
        return 2;
      }
      ++i;
    } else if (arg == "--multi-frac") {
      cfg.multi_attr_fraction = parse_double("--multi-frac", next);
      ++i;
    } else if (arg == "--multi-count") {
      cfg.multi_attr_count =
          static_cast<std::size_t>(parse_positive_int("--multi-count", next));
      ++i;
    } else if (arg == "--sampling") {
      cfg.network.sampling.enabled = true;
      cfg.network.sampling.margin_frac = parse_double("--sampling", next);
      ++i;
    } else if (arg == "--threads") {
      // 0 is meaningful: all hardware threads (same contract as the
      // sweep's worker-pool flag).
      const std::int64_t v = parse_int("--threads", next);
      if (v < 0 || v > 4096) {
        std::cerr << "--threads must be in [0, 4096], got: " << next << "\n";
        usage(2);
      }
      cfg.threads = static_cast<unsigned>(v);
      ++i;
    } else if (arg == "--series") {
      print_series = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage(2);
    }
  }
  if (node_count) {
    // Applied once, from the pristine default placement, so repeated
    // --nodes flags are last-one-wins instead of compounding the scaled
    // geometry. Density-preserving scaling kicks in beyond the paper's
    // 50 nodes (see net::scaled_placement).
    cfg.placement = dirq::net::scaled_placement(*node_count, cfg.placement);
  }
  // Negated comparisons so NaN (std::stod("nan")) is rejected too.
  if (!(cfg.relevant_fraction > 0.0 && cfg.relevant_fraction <= 1.0)) {
    std::cerr << "--relevant must be in (0, 1]\n";
    return 2;
  }
  if (!(cfg.loss_rate >= 0.0 && cfg.loss_rate < 1.0)) {
    std::cerr << "--loss must be in [0, 1)\n";
    return 2;
  }
  if (cfg.network.mode == core::NetworkConfig::ThetaMode::Fixed &&
      !(cfg.network.fixed_pct > 0.0 && cfg.network.fixed_pct <= 100.0)) {
    std::cerr << "--theta must be in (0, 100]\n";
    return 2;
  }
  if (cfg.network.sampling.enabled &&
      !(cfg.network.sampling.margin_frac >= 0.0 &&
        cfg.network.sampling.margin_frac <= 1.0)) {
    std::cerr << "--sampling must be in [0, 1]\n";
    return 2;
  }

  cfg.keep_records = false;
  core::ExperimentResults res;
  try {
    res = core::Experiment(cfg).run();
  } catch (const std::exception& e) {
    std::cerr << "dirqsim: " << e.what() << "\n";
    return 1;
  }

  metrics::Table t({"metric", "value"});
  t.add_row({"mode", cfg.network.mode == core::NetworkConfig::ThetaMode::Atc
                         ? "ATC"
                         : "fixed theta=" + metrics::fmt(cfg.network.fixed_pct, 1) + "%"});
  t.add_row({"mac", cfg.transport == core::TransportKind::Lmac ? "lmac"
                                                               : "instant"});
  t.add_row({"field", data::backend_name(cfg.field_backend)});
  t.add_row({"seed", std::to_string(cfg.seed)});
  t.add_row({"epochs", std::to_string(cfg.epochs)});
  if (cfg.loss_rate > 0.0) {
    t.add_row({"loss rate", metrics::fmt(cfg.loss_rate, 2)});
  }
  // Only shown when threads were explicitly requested: the default
  // (--threads 1) keeps the table byte-stable against every recorded
  // golden. The row reports the *effective* count — plus how the backend
  // parallelises when that needs saying (LMAC: the slot-ordered delivery
  // loop stays sequential by contract), or the clamp reason should a
  // future backend ever force the sequential path again.
  if (cfg.threads != 1) {
    std::string cell = std::to_string(core::Experiment::effective_threads(cfg));
    if (const char* why = core::Experiment::thread_clamp_reason(cfg)) {
      cell += std::string(" (forced sequential: ") + why + ")";
    } else if (const char* note = core::Experiment::thread_mode_note(cfg)) {
      cell += std::string(" (") + note + ")";
    }
    t.add_row({"threads", cell});
  }
  // Multi-sink block: every row here is conditional on an explicitly
  // non-default sink/mix configuration, so default output stays byte-stable
  // against every recorded golden.
  if (cfg.resolved_sink_count() > 1) {
    std::string roots;
    for (dirq::NodeId r : res.sink_roots) {
      if (!roots.empty()) roots += ',';
      roots += std::to_string(r);
    }
    t.add_row({"sinks", std::to_string(res.sink_roots.size()) +
                            " (roots " + roots + ")"});
    t.add_row({"routing", cfg.routing == core::RoutingPolicy::RoundRobin
                              ? "roundrobin"
                              : "admission"});
    for (std::size_t k = 0; k < res.sink_ledgers.size(); ++k) {
      t.add_row({"sink " + std::to_string(k) + " total (units)",
                 std::to_string(res.sink_ledgers[k].total()) + "  (" +
                     std::to_string(res.sink_queries[k]) + " queries)"});
    }
    // Injection -> answer latency per sink (virtual epochs): 0 on the
    // instant transport, query_period on LMAC's deferred audits; the
    // serve plane is where queueing spreads this distribution out.
    for (std::size_t k = 0; k < res.sink_query_latency.size(); ++k) {
      const dirq::metrics::LatencyHistogram& lat = res.sink_query_latency[k];
      t.add_row({"sink " + std::to_string(k) + " latency p50/p99 (epochs)",
                 std::to_string(lat.quantile(0.5)) + "/" +
                     std::to_string(lat.quantile(0.99))});
    }
    t.add_row({"sink energy spread", metrics::fmt(res.sink_energy_spread(), 3)});
    t.add_row({"cross-tree overhead (units)",
               std::to_string(res.cross_tree_update_overhead)});
  }
  if (cfg.multi_attr_fraction > 0.0) {
    t.add_row({"multi-attr mix",
               metrics::fmt(cfg.multi_attr_fraction * 100.0, 1) + "% x " +
                   std::to_string(cfg.multi_attr_count) + " predicates"});
  }
  t.add_row({"queries injected", std::to_string(res.queries)});
  t.add_row({"update msgs transmitted", std::to_string(res.updates_transmitted)});
  t.add_row({"query cost (units)", std::to_string(res.ledger.query_cost())});
  t.add_row({"update cost (units)", std::to_string(res.ledger.update_cost())});
  t.add_row({"control cost (units)", std::to_string(res.ledger.control_cost())});
  t.add_row({"DirQ total (units)", std::to_string(res.ledger.total())});
  t.add_row({"flooding total (units)", std::to_string(res.flooding_total)});
  t.add_row({"cost ratio vs flooding", metrics::fmt(res.cost_ratio(), 3)});
  t.add_row({"mean should-receive %", metrics::fmt(res.should_pct.mean())});
  t.add_row({"mean receive %", metrics::fmt(res.receive_pct.mean())});
  t.add_row({"mean overshoot %", metrics::fmt(res.overshoot_pct.mean())});
  t.add_row({"mean coverage %", metrics::fmt(res.coverage_pct.mean())});
  if (cfg.network.sampling.enabled) {
    t.add_row({"samples taken", std::to_string(res.samples_taken)});
    t.add_row({"samples suppressed", std::to_string(res.samples_skipped)});
  }
  t.print(std::cout);

  if (print_series) {
    std::cout << '\n';
    metrics::TsvBlock tsv("update msgs per 100 epochs", {"epoch", "updates"});
    for (std::size_t b = 0; b < res.updates_per_bin.bin_count(); ++b) {
      tsv.add_row({std::to_string(b * 100),
                   metrics::fmt(res.updates_per_bin.bin(b), 0)});
    }
    tsv.print(std::cout);
  }
  return 0;
}

// dirqsim — command-line front end for the experiment driver.
//
//   dirqsim [options]
//     --seed N            master seed                      (default 42)
//     --nodes N           network size                     (default 50)
//     --epochs N          sensing epochs                   (default 20000)
//     --query-period N    epochs between queries           (default 20)
//     --relevant F        target involved fraction 0..1    (default 0.4)
//     --loss F            channel drop probability [0,1)   (default 0)
//     --mac NAME          transport: instant | lmac        (default instant)
//     --theta PCT         fixed threshold in % of span     (default: ATC)
//     --atc               adaptive threshold control       (default)
//     --sampling F        enable §8 sampling suppression with margin F
//     --series            also print the per-100-epoch update TSV series
//     --help
//
// Prints a run summary (costs, accuracy, cost ratio vs flooding) — the
// one-command way to reproduce any cell of the paper's evaluation grid.
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>

#include "dirq/dirq.hpp"

namespace {

[[noreturn]] void usage(int code) {
  std::cout <<
      "dirqsim — run one DirQ experiment (ICPPW'06 reproduction)\n"
      "  --seed N          master seed (default 42)\n"
      "  --nodes N         network size (default 50)\n"
      "  --epochs N        sensing epochs (default 20000)\n"
      "  --query-period N  epochs between queries (default 20)\n"
      "  --relevant F      target involved fraction in (0,1] (default 0.4)\n"
      "  --loss F          channel drop probability in [0,1) (default 0)\n"
      "  --mac NAME        transport backend: instant (default) or lmac\n"
      "                    (queries/updates ride the TDMA slot schedule)\n"
      "  --theta PCT       fixed threshold, % of sensor span (default: ATC)\n"
      "  --atc             adaptive threshold control (default mode)\n"
      "  --sampling F      enable sampling suppression, margin F of theta\n"
      "  --series          print the update-per-100-epoch TSV series\n"
      "  --help            this text\n";
  std::exit(code);
}

double parse_double(const char* flag, const char* value) {
  if (value == nullptr) {
    std::cerr << "missing value for " << flag << "\n";
    usage(2);
  }
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    std::cerr << "bad value for " << flag << ": " << value << "\n";
    usage(2);
  }
}

/// Strict integer parse: the whole token must be a base-10 integer.
/// Fractions ("2.5"), trailing junk ("10x"), and overflow are errors —
/// never silently truncated the way a stod-then-cast would.
std::int64_t parse_int(const char* flag, const char* value) {
  if (value == nullptr) {
    std::cerr << "missing value for " << flag << "\n";
    usage(2);
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE) {
    std::cerr << flag << " expects an integer, got: " << value << "\n";
    usage(2);
  }
  return static_cast<std::int64_t>(v);
}

/// parse_int plus a >= 1 check, for counts where 0 or a negative would
/// otherwise wrap through a size_t/uint64_t cast into a huge value.
std::int64_t parse_positive_int(const char* flag, const char* value) {
  const std::int64_t v = parse_int(flag, value);
  if (v < 1) {
    std::cerr << flag << " must be a positive integer, got: " << value << "\n";
    usage(2);
  }
  return v;
}

/// Strict unsigned parse covering the full uint64 seed domain (strtoll
/// would reject valid seeds above INT64_MAX). Negatives are an error, not
/// a wrap: strtoull accepts a leading '-', so check for it explicitly.
std::uint64_t parse_uint(const char* flag, const char* value) {
  if (value == nullptr) {
    std::cerr << "missing value for " << flag << "\n";
    usage(2);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE ||
      std::string(value).find('-') != std::string::npos) {
    std::cerr << flag << " expects a non-negative integer, got: " << value
              << "\n";
    usage(2);
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dirq;

  core::ExperimentConfig cfg;
  cfg.network.mode = core::NetworkConfig::ThetaMode::Atc;
  bool print_series = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (arg == "--seed") {
      cfg.seed = parse_uint("--seed", next);
      ++i;
    } else if (arg == "--nodes") {
      cfg.placement.node_count =
          static_cast<std::size_t>(parse_positive_int("--nodes", next));
      ++i;
    } else if (arg == "--epochs") {
      cfg.epochs = parse_positive_int("--epochs", next);
      ++i;
    } else if (arg == "--query-period") {
      cfg.query_period = parse_positive_int("--query-period", next);
      ++i;
    } else if (arg == "--mac") {
      const std::string mac = next != nullptr ? next : "";
      if (mac == "instant") {
        cfg.transport = core::TransportKind::Instant;
      } else if (mac == "lmac") {
        cfg.transport = core::TransportKind::Lmac;
      } else {
        std::cerr << "--mac must be 'instant' or 'lmac', got: " << mac << "\n";
        return 2;
      }
      ++i;
    } else if (arg == "--relevant") {
      cfg.relevant_fraction = parse_double("--relevant", next);
      ++i;
    } else if (arg == "--loss") {
      cfg.loss_rate = parse_double("--loss", next);
      ++i;
    } else if (arg == "--theta") {
      cfg.network.mode = core::NetworkConfig::ThetaMode::Fixed;
      cfg.network.fixed_pct = parse_double("--theta", next);
      ++i;
    } else if (arg == "--atc") {
      cfg.network.mode = core::NetworkConfig::ThetaMode::Atc;
    } else if (arg == "--sampling") {
      cfg.network.sampling.enabled = true;
      cfg.network.sampling.margin_frac = parse_double("--sampling", next);
      ++i;
    } else if (arg == "--series") {
      print_series = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage(2);
    }
  }
  // Negated comparisons so NaN (std::stod("nan")) is rejected too.
  if (!(cfg.relevant_fraction > 0.0 && cfg.relevant_fraction <= 1.0)) {
    std::cerr << "--relevant must be in (0, 1]\n";
    return 2;
  }
  if (!(cfg.loss_rate >= 0.0 && cfg.loss_rate < 1.0)) {
    std::cerr << "--loss must be in [0, 1)\n";
    return 2;
  }
  if (cfg.network.mode == core::NetworkConfig::ThetaMode::Fixed &&
      !(cfg.network.fixed_pct > 0.0 && cfg.network.fixed_pct <= 100.0)) {
    std::cerr << "--theta must be in (0, 100]\n";
    return 2;
  }
  if (cfg.network.sampling.enabled &&
      !(cfg.network.sampling.margin_frac >= 0.0 &&
        cfg.network.sampling.margin_frac <= 1.0)) {
    std::cerr << "--sampling must be in [0, 1]\n";
    return 2;
  }

  cfg.keep_records = false;
  core::ExperimentResults res;
  try {
    res = core::Experiment(cfg).run();
  } catch (const std::exception& e) {
    std::cerr << "dirqsim: " << e.what() << "\n";
    return 1;
  }

  metrics::Table t({"metric", "value"});
  t.add_row({"mode", cfg.network.mode == core::NetworkConfig::ThetaMode::Atc
                         ? "ATC"
                         : "fixed theta=" + metrics::fmt(cfg.network.fixed_pct, 1) + "%"});
  t.add_row({"mac", cfg.transport == core::TransportKind::Lmac ? "lmac"
                                                               : "instant"});
  t.add_row({"seed", std::to_string(cfg.seed)});
  t.add_row({"epochs", std::to_string(cfg.epochs)});
  if (cfg.loss_rate > 0.0) {
    t.add_row({"loss rate", metrics::fmt(cfg.loss_rate, 2)});
  }
  t.add_row({"queries injected", std::to_string(res.queries)});
  t.add_row({"update msgs transmitted", std::to_string(res.updates_transmitted)});
  t.add_row({"query cost (units)", std::to_string(res.ledger.query_cost())});
  t.add_row({"update cost (units)", std::to_string(res.ledger.update_cost())});
  t.add_row({"control cost (units)", std::to_string(res.ledger.control_cost())});
  t.add_row({"DirQ total (units)", std::to_string(res.ledger.total())});
  t.add_row({"flooding total (units)", std::to_string(res.flooding_total)});
  t.add_row({"cost ratio vs flooding", metrics::fmt(res.cost_ratio(), 3)});
  t.add_row({"mean should-receive %", metrics::fmt(res.should_pct.mean())});
  t.add_row({"mean receive %", metrics::fmt(res.receive_pct.mean())});
  t.add_row({"mean overshoot %", metrics::fmt(res.overshoot_pct.mean())});
  t.add_row({"mean coverage %", metrics::fmt(res.coverage_pct.mean())});
  if (cfg.network.sampling.enabled) {
    t.add_row({"samples taken", std::to_string(res.samples_taken)});
    t.add_row({"samples suppressed", std::to_string(res.samples_skipped)});
  }
  t.print(std::cout);

  if (print_series) {
    std::cout << '\n';
    metrics::TsvBlock tsv("update msgs per 100 epochs", {"epoch", "updates"});
    for (std::size_t b = 0; b < res.updates_per_bin.bin_count(); ++b) {
      tsv.add_row({std::to_string(b * 100),
                   metrics::fmt(res.updates_per_bin.bin(b), 0)});
    }
    tsv.print(std::cout);
  }
  return 0;
}

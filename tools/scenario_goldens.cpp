// Regenerates the golden table embedded in
// tests/scenarios/scenario_matrix_test.cpp. Run after any *intentional*
// change to the RNG layout, topology builder, field model, protocol logic,
// or cost accounting, and paste the output over the kCases initialiser:
//
//   cmake --build build --target scenario_goldens
//   ./build/tools/scenario_goldens
//
// The grid and per-cell config come from tests/scenarios/scenario_grid.hpp,
// shared with the test, so the two cannot drift apart.
#include <cstdio>

#include "core/experiment.hpp"
#include "scenarios/scenario_grid.hpp"

int main() {
  using namespace dirq;
  scenarios::for_each_cell([](std::uint64_t seed, std::size_t nodes,
                              double loss) {
    const core::ExperimentResults r =
        core::Experiment(scenarios::make_config(seed, nodes, loss)).run();
    std::printf(
        "      {%llu, %zu, %.2f, %lld, %lld, %lld, %.10f, %.10f, %.10f},\n",
        static_cast<unsigned long long>(seed), nodes, loss,
        static_cast<long long>(r.updates_transmitted),
        static_cast<long long>(r.ledger.total()),
        static_cast<long long>(r.flooding_total), r.coverage_pct.mean(),
        r.overshoot_pct.mean(), r.receive_pct.mean());
  });
  return 0;
}

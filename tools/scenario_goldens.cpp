// Regenerates the golden tables embedded in
// tests/scenarios/scenario_matrix_test.cpp (instant tier) and
// tests/scenarios/lmac_matrix_test.cpp (LMAC tier). Run after any
// *intentional* change to the RNG layout, topology builder, field model,
// protocol logic, MAC behaviour, or cost accounting, and paste each table
// over the matching kCases initialiser:
//
//   cmake --build build --target scenario_goldens
//   ./build/tools/scenario_goldens
//
// The grids and per-cell configs come from tests/scenarios/scenario_grid.hpp,
// shared with the tests, so the three cannot drift apart.
#include <cstdio>

#include "core/experiment.hpp"
#include "scenarios/scenario_grid.hpp"

namespace {

void print_row(std::uint64_t seed, std::size_t nodes, double loss,
               const dirq::core::ExperimentResults& r) {
  std::printf(
      "      {%llu, %zu, %.2f, %lld, %lld, %lld, %.10f, %.10f, %.10f},\n",
      static_cast<unsigned long long>(seed), nodes, loss,
      static_cast<long long>(r.updates_transmitted),
      static_cast<long long>(r.ledger.total()),
      static_cast<long long>(r.flooding_total), r.coverage_pct.mean(),
      r.overshoot_pct.mean(), r.receive_pct.mean());
}

}  // namespace

int main() {
  using namespace dirq;
  std::printf("// instant tier — paste over kCases in scenario_matrix_test.cpp\n");
  scenarios::for_each_cell([](std::uint64_t seed, std::size_t nodes,
                              double loss) {
    const core::ExperimentResults r =
        core::Experiment(scenarios::make_config(seed, nodes, loss)).run();
    print_row(seed, nodes, loss, r);
  });
  std::printf("// lmac tier — paste over kCases in lmac_matrix_test.cpp\n");
  scenarios::for_each_lmac_cell([](std::uint64_t seed, std::size_t nodes,
                                   double loss) {
    const core::ExperimentResults r =
        core::Experiment(scenarios::make_lmac_config(seed, nodes, loss)).run();
    print_row(seed, nodes, loss, r);
  });
  std::printf("// multi-attr tier — paste over kCases in multi_matrix_test.cpp\n");
  scenarios::for_each_multi_cell([](std::uint64_t seed, double fraction,
                                    std::size_t count) {
    const core::ExperimentResults r =
        core::Experiment(scenarios::make_multi_config(seed, fraction, count))
            .run();
    std::printf(
        "      {%llu, %.2f, %zu, %lld, %lld, %lld, %.10f, %.10f, %.10f},\n",
        static_cast<unsigned long long>(seed), fraction, count,
        static_cast<long long>(r.updates_transmitted),
        static_cast<long long>(r.ledger.total()),
        static_cast<long long>(r.flooding_total), r.coverage_pct.mean(),
        r.overshoot_pct.mean(), r.receive_pct.mean());
  });
  return 0;
}

#!/usr/bin/env sh
# Regenerates the checked-in perf baseline (ROADMAP "Perf baseline" item):
# wall-clock and peak-RSS for the paper's reference 50-node / 20 000-epoch
# ATC run on both transports, captured by the sweep JSON sink.
#
#   tools/record_baseline.sh [build-dir]     (run from the repo root,
#                                             against a Release build)
#
# --threads 1 keeps per-cell wall_seconds free of scheduling contention so
# later optimisation PRs can compare like with like; the timings are
# machine-dependent snapshots, the structural metrics are deterministic.
set -eu

BUILD_DIR=${1:-build}
OUT=bench/baselines/reference_50n_20000e.json

mkdir -p bench/baselines
"$BUILD_DIR/tools/dirqsim" sweep \
  --nodes 50 --epochs 20000 --theta atc --relevant 0.4 --seeds 42 \
  --mac instant,lmac --threads 1 --json "$OUT"
echo "baseline written to $OUT"

#!/usr/bin/env sh
# Regenerates the checked-in perf baselines:
#   * reference_50n_20000e.json — the paper's reference 50-node /
#     20 000-epoch ATC run on both transports (sweep JSON sink);
#   * scale_500n_2000e.json — the large-topology tier's 500-node cell on
#     the pinned (golden sequential AR(1)) environment backend (epoch
#     throughput + peak RSS from bench_scale_topology);
#   * scale_500n_fast.json — the same tier on the counter-based fast
#     backend, at 500 and 2000 nodes (the fast cells perf_smoke.sh
#     guards; the 2000-node row is the large-topology guard cell);
#   * scale_2000n_fast_mt.json — the 2000-node fast cell again with
#     --threads 0 (all hardware threads on the epoch loop): the intra-run
#     parallelism guard cell. The row's "threads" key records the count
#     the recording host actually resolved.
#   * scale_500n_lossy.json — the 500-node fast cell at loss 0.15, at 1
#     worker and all cores: the counter-keyed loss channel riding the
#     parallel epoch engine. The lossy perf guard in perf_smoke.sh is
#     self-relative (threads-N vs threads-1 from one run), so these rows
#     document the surface rather than gate it.
#   * lmac_overhead_threads.json — the LMAC standing-cost grid at 1 worker
#     and all cores (bench_lmac_overhead, dirq.sweep.v1): the
#     chunk-sharded LMAC epoch engine keeps the ledger byte-identical
#     across the threads axis, so paired rows differ only in
#     wall_seconds — the partial-parallelism speedup record.
#   * msink_500n.json — the multi-sink tier's 500-node cells at 1 and 4
#     sinks x 1 worker and all cores (bench_multi_sink, dirq.msink.v1):
#     the 4-sink-vs-1-sink wall ratio and the self-relative
#     parallel-vs-sequential 4-sink guard perf_smoke.sh checks, plus the
#     per-sink ledgers and energy spread for admission vs round-robin.
#     Ledgers are byte-identical across the threads axis (the tree-sharded
#     engine's contract); only run_seconds differs between the rows.
#   * serve_500n.json — the serve plane's 500-node fast-field grid
#     (bench_serve_throughput, dirq.serve_bench.v1): rate x sinks x cache
#     cells; the cache-on-vs-cache-off qps invariant perf_smoke.sh guards
#     is self-relative, but the checked-in rows document the sustained
#     qps / tail-latency surface the serve tier is expected to hold.
#
#   tools/record_baseline.sh [build-dir]     (run from the repo root,
#                                             against a Release build)
#
# --threads 1 keeps per-cell wall_seconds free of scheduling contention so
# later optimisation PRs can compare like with like; the timings are
# machine-dependent snapshots, the structural metrics are deterministic.
set -eu

BUILD_DIR=${1:-build}
OUT=bench/baselines/reference_50n_20000e.json
SCALE_OUT=bench/baselines/scale_500n_2000e.json
FAST_OUT=bench/baselines/scale_500n_fast.json
MT_OUT=bench/baselines/scale_2000n_fast_mt.json
LOSSY_OUT=bench/baselines/scale_500n_lossy.json
LMAC_THR_OUT=bench/baselines/lmac_overhead_threads.json
MSINK_OUT=bench/baselines/msink_500n.json
SERVE_OUT=bench/baselines/serve_500n.json

mkdir -p bench/baselines
"$BUILD_DIR/tools/dirqsim" sweep \
  --nodes 50 --epochs 20000 --theta atc --relevant 0.4 --seeds 42 \
  --mac instant,lmac --threads 1 --json "$OUT"
echo "baseline written to $OUT"

# (The PR-4 before/after ledger lives in the static
# bench/baselines/scale_500n_pre_refactor.json, never regenerated.)
"$BUILD_DIR/bench/bench_scale_topology" --nodes 500 --epochs 2000 \
  --field pinned --json "$SCALE_OUT"
echo "scale baseline written to $SCALE_OUT"

"$BUILD_DIR/bench/bench_scale_topology" --nodes 500,2000 --epochs 2000 \
  --field fast --json "$FAST_OUT"
echo "fast-field scale baseline written to $FAST_OUT"

"$BUILD_DIR/bench/bench_scale_topology" --nodes 2000 --epochs 2000 \
  --field fast --threads 0 --no-burst --json "$MT_OUT"
echo "parallel-epoch scale baseline written to $MT_OUT"

"$BUILD_DIR/bench/bench_scale_topology" --nodes 500 --epochs 2000 \
  --field fast --loss 0.15 --threads 1,0 --no-burst --json "$LOSSY_OUT"
echo "lossy scale baseline written to $LOSSY_OUT"

"$BUILD_DIR/bench/bench_lmac_overhead" --epochs 2000 --threads 1,0 \
  --json "$LMAC_THR_OUT"
echo "lmac threads baseline written to $LMAC_THR_OUT"

"$BUILD_DIR/bench/bench_multi_sink" --nodes 500 --sinks 1,4 --epochs 2000 \
  --threads 1,0 --json "$MSINK_OUT"
echo "multi-sink baseline written to $MSINK_OUT"

"$BUILD_DIR/bench/bench_serve_throughput" --nodes 500 --rates 20,100 \
  --sinks 1,4 --duration 2000 --json "$SERVE_OUT"
echo "serve baseline written to $SERVE_OUT"

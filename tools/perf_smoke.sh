#!/usr/bin/env sh
# Perf smoke for CI: runs the guarded scale cells through
# bench_scale_topology and fails when wall-clock regresses more than 2x
# against the checked-in baselines:
#
#   * pinned 500n/2000e  vs bench/baselines/scale_500n_2000e.json
#   * fast   500n/2000e  vs bench/baselines/scale_500n_fast.json
#   * fast  2000n/2000e  vs bench/baselines/scale_500n_fast.json
#     (the fast-field large-topology guard cell: the counter backend is
#      the backend 2000-node-and-beyond runs use, so its asymptotics are
#      the ones worth guarding)
#   * fast  2000n/2000e --threads 0 vs bench/baselines/scale_2000n_fast_mt.json
#     (the intra-run parallel epoch engine on all cores; also guards the
#      pool itself — a deadlocked or serialised pool shows up as >2x)
#   * lossy 500n/2000e: the fast-field 500-node cell at loss 0.15, at
#     --threads 0 vs --threads 1 from the SAME bench_scale_topology run —
#     self-relative. The counter-keyed loss channel must not serialise
#     the parallel epoch engine: the all-cores row must be STRICTLY
#     faster than the sequential row on any multi-core runner (skipped on
#     1-core hosts, where --threads 0 resolves to 1 and the comparison is
#     vacuous).
#   * multi-sink 500n/2000e: 4 sinks (admission) vs 1 sink from the SAME
#     bench_multi_sink run — self-relative, so machine speed divides out.
#     The 3x budget bounds the N-tree overlay's cost: 4 trees quadruple
#     the update/flood planes but share one sensing plane, so a healthy
#     run lands well under 3x and a per-query rebuild or an O(N^2)
#     cross-tree scan shows up immediately.
#   * multi-sink parallel 500n/2000e: the 4-sink admission cell at
#     --threads 0 vs --threads 1 from the SAME bench_multi_sink run —
#     self-relative again. The tree-sharded epoch engine must make the
#     all-cores row STRICTLY faster than the sequential row on any
#     multi-core runner (skipped on 1-core hosts, where --threads 0
#     resolves to 1 and the comparison is vacuous); a serialised pool or
#     a merge path that re-does the shards' work shows up immediately.
#   * serve 500n/2000e: cache-on vs cache-off qps from the SAME
#     bench_serve_throughput run — self-relative and on the virtual
#     clock, so machine speed divides out entirely. Cache-on must answer
#     STRICTLY more queries per virtual second than cache-off at an
#     offered rate above the injection budget; a broken cache (always
#     missing, or no longer consulted) collapses the two to equality.
#
#   tools/perf_smoke.sh [build-dir]     (run from the repo root, against a
#                                        Release build)
#
# The 2x budget absorbs machine variance between the recording host and CI
# runners while still catching asymptotic regressions (the pre-spatial-
# index build could not place 500 nodes at all, and an accidental O(n^2)
# or sequential-RNG reintroduction shows up as >2x long before it reaches
# paper-figure runs).
set -eu

BUILD_DIR=${1:-build}
PINNED_BASELINE=bench/baselines/scale_500n_2000e.json
FAST_BASELINE=bench/baselines/scale_500n_fast.json
MT_BASELINE=bench/baselines/scale_2000n_fast_mt.json
OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

# extract_run_seconds FILE NODES FIELD — first smooth row of a
# dirq.scale.v1 document matching the node count and backend.
extract_run_seconds() {
  grep '"run_seconds"' "$1" | grep "\"nodes\": $2," |
    grep "\"field\": \"$3\"" | grep '"workload": "smooth"' | head -n 1 |
    sed 's/.*"run_seconds": \([0-9.eE+-]*\),.*/\1/'
}

# run_cells NODES FIELD — one bench invocation, smooth cells only (the
# burst rows are part of the tracked surface but not of this guard, so CI
# does not pay for rows it ignores).
run_cells() {
  "$BUILD_DIR/bench/bench_scale_topology" --nodes "$1" --epochs 2000 \
    --field "$2" --no-burst --threads "${3:-1}" --json "$OUT" >/dev/null
}

# check BASELINE NODES FIELD — compare a cell of the last run_cells output.
check() {
  baseline_file=$1
  nodes=$2
  field=$3
  base=$(extract_run_seconds "$baseline_file" "$nodes" "$field")
  now=$(extract_run_seconds "$OUT" "$nodes" "$field")
  if [ -z "$base" ] || [ -z "$now" ]; then
    echo "perf_smoke: could not extract run_seconds for ${nodes}n/$field" \
         "(baseline='$base' now='$now')" >&2
    exit 2
  fi
  echo "perf_smoke: ${nodes}n/2000e/$field run_seconds now=$now baseline=$base (budget 2x)"
  awk -v now="$now" -v base="$base" -v label="${nodes}n/$field" 'BEGIN {
    if (now > 2.0 * base) {
      printf "perf_smoke: FAIL — %s: %.3fs exceeds 2x baseline %.3fs\n", label, now, base
      exit 1
    }
    printf "perf_smoke: OK %s (%.2fx of baseline)\n", label, now / base
  }'
}

run_cells 500 pinned
check "$PINNED_BASELINE" 500 pinned
run_cells 500,2000 fast
check "$FAST_BASELINE" 500 fast
check "$FAST_BASELINE" 2000 fast
# Intra-run parallel cell: all hardware threads on the epoch loop. The
# baseline was recorded sequentially, so any healthy multi-core runner
# lands well under budget; a pool regression (serialisation, contention,
# deadlock-adjacent slowdown) does not.
run_cells 2000 fast 0
check "$MT_BASELINE" 2000 fast

# Lossy parallel guard cell: the 500-node fast cell at loss 0.15, 1 worker
# vs all cores, from one bench run (self-relative, machine speed divides
# out). The "threads" key records the EFFECTIVE count, so the parallel row
# is "the lossy row whose threads != 1".
if [ "$(nproc 2>/dev/null || echo 1)" -gt 1 ]; then
  "$BUILD_DIR/bench/bench_scale_topology" --nodes 500 --epochs 2000 \
    --field fast --loss 0.15 --threads 1,0 --no-burst --json "$OUT" \
    >/dev/null
  seq_s=$(grep '"run_seconds"' "$OUT" | grep '"loss": 0.15' |
    grep '"threads": 1,' | head -n 1 |
    sed 's/.*"run_seconds": \([0-9.eE+-]*\),.*/\1/')
  par_s=$(grep '"run_seconds"' "$OUT" | grep '"loss": 0.15' |
    grep -v '"threads": 1,' | head -n 1 |
    sed 's/.*"run_seconds": \([0-9.eE+-]*\),.*/\1/')
  if [ -z "$seq_s" ] || [ -z "$par_s" ]; then
    echo "perf_smoke: could not extract lossy run_seconds" \
         "(threads-1='$seq_s' threads-N='$par_s')" >&2
    exit 2
  fi
  echo "perf_smoke: 500n/2000e lossy run_seconds threads-1=$seq_s threads-N=$par_s (parallel must win)"
  awk -v seq="$seq_s" -v par="$par_s" 'BEGIN {
    if (par >= seq) {
      printf "perf_smoke: FAIL — lossy parallel %.3fs not faster than sequential %.3fs\n", par, seq
      exit 1
    }
    printf "perf_smoke: OK lossy parallel (%.2fx speedup)\n", seq / par
  }'
else
  echo "perf_smoke: SKIP lossy parallel guard (single-core host)"
fi

# Multi-sink guard cell: one bench run covering the 1-sink and 4-sink
# cells, compared against each other (dirq.msink.v1 rows).
extract_msink_seconds() {
  grep '"run_seconds"' "$1" | grep "\"sinks\": $2," |
    grep "\"routing\": \"$3\"" | head -n 1 |
    sed 's/.*"run_seconds": \([0-9.eE+-]*\),.*/\1/'
}

"$BUILD_DIR/bench/bench_multi_sink" --nodes 500 --sinks 1,4 --epochs 2000 \
  --json "$OUT" >/dev/null
one=$(extract_msink_seconds "$OUT" 1 "-")
four=$(extract_msink_seconds "$OUT" 4 "admission")
if [ -z "$one" ] || [ -z "$four" ]; then
  echo "perf_smoke: could not extract multi-sink run_seconds" \
       "(1-sink='$one' 4-sink='$four')" >&2
  exit 2
fi
echo "perf_smoke: 500n/2000e multi-sink run_seconds 1-sink=$one 4-sink=$four (budget 3x)"
awk -v one="$one" -v four="$four" 'BEGIN {
  if (four > 3.0 * one) {
    printf "perf_smoke: FAIL — 4-sink: %.3fs exceeds 3x 1-sink %.3fs\n", four, one
    exit 1
  }
  printf "perf_smoke: OK multi-sink (%.2fx of 1-sink)\n", four / one
}'

# Parallel multi-sink guard cell: the 4-sink admission cell at 1 worker vs
# all cores, from one bench run. The "threads" key records the EFFECTIVE
# count, so the parallel row is "the admission row whose threads != 1".
if [ "$(nproc 2>/dev/null || echo 1)" -gt 1 ]; then
  "$BUILD_DIR/bench/bench_multi_sink" --nodes 500 --sinks 4 --epochs 2000 \
    --threads 1,0 --json "$OUT" >/dev/null
  seq_s=$(grep '"run_seconds"' "$OUT" | grep '"routing": "admission"' |
    grep '"threads": 1,' | head -n 1 |
    sed 's/.*"run_seconds": \([0-9.eE+-]*\),.*/\1/')
  par_s=$(grep '"run_seconds"' "$OUT" | grep '"routing": "admission"' |
    grep -v '"threads": 1,' | head -n 1 |
    sed 's/.*"run_seconds": \([0-9.eE+-]*\),.*/\1/')
  if [ -z "$seq_s" ] || [ -z "$par_s" ]; then
    echo "perf_smoke: could not extract parallel multi-sink run_seconds" \
         "(threads-1='$seq_s' threads-N='$par_s')" >&2
    exit 2
  fi
  echo "perf_smoke: 500n/2000e 4-sink run_seconds threads-1=$seq_s threads-N=$par_s (parallel must win)"
  awk -v seq="$seq_s" -v par="$par_s" 'BEGIN {
    if (par >= seq) {
      printf "perf_smoke: FAIL — 4-sink parallel %.3fs not faster than sequential %.3fs\n", par, seq
      exit 1
    }
    printf "perf_smoke: OK parallel multi-sink (%.2fx speedup)\n", seq / par
  }'
else
  echo "perf_smoke: SKIP parallel multi-sink guard (single-core host)"
fi

# Serve guard cell: one bench run covering the cache-off and cache-on
# cells at rate 20 / 1 sink (dirq.serve_bench.v1 rows); the invariant is
# on the virtual clock, so it is exact, not a wall budget.
extract_serve_qps() {
  grep '"qps"' "$1" | grep "\"cache\": $2" | head -n 1 |
    sed 's/.*"qps": \([0-9.eE+-]*\),.*/\1/'
}

"$BUILD_DIR/bench/bench_serve_throughput" --nodes 500 --rates 20 --sinks 1 \
  --duration 2000 --json "$OUT" >/dev/null
off=$(extract_serve_qps "$OUT" false)
on=$(extract_serve_qps "$OUT" true)
if [ -z "$off" ] || [ -z "$on" ]; then
  echo "perf_smoke: could not extract serve qps" \
       "(cache-off='$off' cache-on='$on')" >&2
  exit 2
fi
echo "perf_smoke: 500n/2000e serve qps cache-off=$off cache-on=$on (must be strictly higher)"
awk -v off="$off" -v on="$on" 'BEGIN {
  if (on <= off) {
    printf "perf_smoke: FAIL — serve cache-on qps %.3f <= cache-off %.3f\n", on, off
    exit 1
  }
  printf "perf_smoke: OK serve cache (%.2fx of cache-off)\n", on / off
}'

#!/usr/bin/env sh
# Perf smoke for CI: runs the 500-node / 2000-epoch baseline cell through
# bench_scale_topology and fails when wall-clock regresses more than 2x
# against the checked-in bench/baselines/scale_500n_2000e.json.
#
#   tools/perf_smoke.sh [build-dir]     (run from the repo root, against a
#                                        Release build)
#
# The 2x budget absorbs machine variance between the recording host and CI
# runners while still catching asymptotic regressions (the pre-spatial-
# index build could not place 500 nodes at all, and an accidental O(n^2)
# reintroduction shows up as >2x long before it reaches paper-figure runs).
set -eu

BUILD_DIR=${1:-build}
BASELINE=bench/baselines/scale_500n_2000e.json
OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

"$BUILD_DIR/bench/bench_scale_topology" --nodes 500 --epochs 2000 --json "$OUT" \
  >/dev/null

extract_run_seconds() {
  # First smooth 500-node row of a dirq.scale.v1 document. The
  # run_seconds grep anchors the match to actual data rows.
  grep '"run_seconds"' "$1" | grep '"nodes": 500' |
    grep '"workload": "smooth"' | head -n 1 |
    sed 's/.*"run_seconds": \([0-9.eE+-]*\),.*/\1/'
}

base=$(extract_run_seconds "$BASELINE")
now=$(extract_run_seconds "$OUT")
if [ -z "$base" ] || [ -z "$now" ]; then
  echo "perf_smoke: could not extract run_seconds (baseline='$base' now='$now')" >&2
  exit 2
fi

echo "perf_smoke: 500n/2000e run_seconds now=$now baseline=$base (budget 2x)"
awk -v now="$now" -v base="$base" 'BEGIN {
  if (now > 2.0 * base) {
    printf "perf_smoke: FAIL — %.3fs exceeds 2x baseline %.3fs\n", now, base
    exit 1
  }
  printf "perf_smoke: OK (%.2fx of baseline)\n", now / base
}'
